// lint: allow-file(wall-clock, reason=group-commit cadence is wall-clock by definition; the flusher thread lives off the quantum loop and never feeds scheduling decisions)
//! Append-only write-ahead log with group commit.
//!
//! Durability for the live runtime (DESIGN.md §14): every update the
//! executor accepts is encoded into a fixed-size, CRC-protected record and
//! handed to a dedicated **flusher thread** over the same lock-free SPSC
//! ring the ingest path uses ([`crate::spsc`]), so the 500 µs quantum loop
//! never blocks on a syscall, let alone an `fsync`. The flusher batches
//! whatever has accumulated since its last pass into one `write`, then
//! syncs on a configurable cadence ([`FsyncPolicy`]): after every batch
//! (`always`), at most once per group window (`group:<µs>`), or never
//! (`off` — `kill -9` still loses nothing, because completed `write`s
//! survive process death in the page cache; only power/kernel loss is at
//! stake).
//!
//! ## On-disk format
//!
//! A segment (`wal.seg`) is a 32-byte header followed by 50-byte records:
//!
//! ```text
//! header:  "STRIPWAL" | version u32 | config fingerprint u64 | base_seq u64 | crc32
//! record:  kind u8 | seq u64 | class u8 | index u32 | generation µs i64
//!          | payload f64 bits | attr_mask u64 | arrival µs i64 | crc32
//! ```
//!
//! All integers are little-endian. The fingerprint is
//! [`strip_core::fingerprint::config_fingerprint`] — a segment written
//! under one configuration is never replayed under another. `base_seq` is
//! the sequence number of the first record the segment may hold; records
//! below it belong to the snapshot that sealed the previous segment
//! ([`crate::snapshot`]). A [`REC_SEAL`] record marks a clean shutdown;
//! recovery treats anything after a torn or CRC-failing record as lost
//! ([`crate::recovery`]).

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use strip_core::report::DurabilityStats;

use crate::protocol::WireUpdate;
use crate::spsc;

/// Active segment file name inside the WAL directory.
pub const SEGMENT_FILE: &str = "wal.seg";
/// Default size bound for the active segment before the flusher rotates
/// it into the sealed chain (64 MiB).
pub const DEFAULT_ROTATE_BYTES: u64 = 64 * 1024 * 1024;
/// Segment header magic.
pub const WAL_MAGIC: [u8; 8] = *b"STRIPWAL";
/// Segment format version.
pub const WAL_VERSION: u32 = 1;
/// Encoded segment header length in bytes.
pub const HDR_LEN: usize = 32;
/// Encoded record length in bytes (fixed — torn tails are detected by
/// length arithmetic plus the per-record CRC, never by scanning).
pub const REC_LEN: usize = 50;
/// Record kind: one accepted update.
pub const REC_UPDATE: u8 = 1;
/// Record kind: clean end of segment (orderly shutdown).
pub const REC_SEAL: u8 = 2;

/// Ring capacity between the executor and the flusher. At 50 bytes per
/// record this bounds the executor-side buffer near 3 MiB; the executor
/// spins (off the hot path, at ingest rates far above any measured) only
/// if the flusher falls this far behind.
const WAL_RING_CAPACITY: usize = 1 << 16;

// ---- CRC32 (IEEE, slice-by-8) -----------------------------------------------

/// Eight derived lookup tables for slice-by-8: `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[j]` advances a byte `j` further positions
/// in one lookup. Same polynomial, same checksums as the byte-wise form —
/// only the number of table lookups per byte changes.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

const CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
///
/// Slice-by-8: eight bytes per iteration, eight independent table lookups
/// the CPU can overlap. The flusher checksums every record on the hot
/// path, so this runs ~4-5x faster than the byte-wise loop while
/// producing bit-identical checksums.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = c ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- little-endian encode helpers -------------------------------------------

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

// ---- errors -----------------------------------------------------------------

/// Why persisted durability bytes were rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Fewer bytes than the fixed encoding requires (a torn tail).
    Truncated,
    /// The checksum over the preceding bytes does not match.
    BadCrc,
    /// The magic prefix is not the expected one.
    BadMagic,
    /// The format version is not one this build can read.
    BadVersion(u32),
    /// An unknown record kind byte.
    BadKind(u8),
    /// The artefact was written under a different configuration.
    FingerprintMismatch {
        /// Fingerprint of the running configuration.
        expected: u64,
        /// Fingerprint stored in the artefact.
        found: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Truncated => write!(f, "truncated durability artefact"),
            WalError::BadCrc => write!(f, "checksum mismatch"),
            WalError::BadMagic => write!(f, "bad magic"),
            WalError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            WalError::BadKind(k) => write!(f, "unknown record kind {k}"),
            WalError::FingerprintMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: artefact {found:016x}, running config {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<WalError> for io::Error {
    fn from(e: WalError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// ---- fsync policy -----------------------------------------------------------

/// When the flusher issues `fsync` (the priced variable of BENCH_7 /
/// figR2). Orthogonal to `kill -9` safety — the ack barrier waits for
/// `write`, which survives process death regardless of cadence — this
/// trades power-loss durability against throughput and freshness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every batch the flusher drains (per-record at low rates).
    Always,
    /// Group commit: sync at most once per this many microseconds.
    Group(u64),
    /// Never sync (rely on the OS writeback; still torn-tail safe).
    Off,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag grammar: `always`, `off`, or
    /// `group:<µs>` with an optional `us` suffix (`group:250us`).
    #[must_use]
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Off),
            _ => {
                let micros = s.strip_prefix("group:")?;
                let micros = micros.strip_suffix("us").unwrap_or(micros);
                let micros: u64 = micros.parse().ok()?;
                (micros > 0).then_some(FsyncPolicy::Group(micros))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group(us) => write!(f, "group:{us}us"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Durability configuration carried by
/// [`LiveConfig`](crate::executor::LiveConfig).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.seg` and `snapshot.bin` (created on start).
    pub dir: PathBuf,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
    /// Seconds between periodic store snapshots (each snapshot seals and
    /// truncates the log segment chain).
    pub snapshot_secs: f64,
    /// Recover from the directory's snapshot + WAL chain before serving.
    pub recover: bool,
    /// Rotate the active segment into the sealed chain once it exceeds
    /// this many bytes (0 disables rotation; growth is then bounded only
    /// by the snapshot cadence).
    pub rotate_bytes: u64,
}

impl DurabilityConfig {
    /// Defaults: 1 ms group commit, a snapshot every 5 s, 64 MiB
    /// rotation, no recovery.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Group(1_000),
            snapshot_secs: 5.0,
            recover: false,
            rotate_bytes: DEFAULT_ROTATE_BYTES,
        }
    }
}

/// File name of sealed (rotated) segment `idx` inside the WAL directory.
#[must_use]
pub fn rotated_segment_name(idx: u64) -> String {
    format!("wal.{idx:06}.seg")
}

/// Sealed segments in the directory, ascending by rotation index (which
/// is also ascending by `base_seq` — the flusher rotates in log order).
///
/// # Errors
///
/// Directory enumeration failures. A missing directory is an empty chain.
pub fn list_rotated(dir: &std::path::Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(idx) = name
            .strip_prefix("wal.")
            .and_then(|s| s.strip_suffix(".seg"))
            .filter(|mid| mid.len() >= 6 && mid.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|mid| mid.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((idx, entry.path()));
    }
    out.sort_by_key(|&(idx, _)| idx);
    Ok(out)
}

/// Deletes every sealed segment in the chain (after a snapshot has made
/// them redundant, or on a fresh start).
fn remove_rotated(dir: &std::path::Path) -> io::Result<()> {
    for (_, path) in list_rotated(dir)? {
        std::fs::remove_file(path)?;
    }
    Ok(())
}

/// Fsyncs the WAL directory itself so a just-completed rename survives
/// power loss.
fn sync_dir(dir: &std::path::Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

// ---- records and headers ----------------------------------------------------

/// One decoded WAL record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalRecord {
    /// [`REC_UPDATE`] or [`REC_SEAL`].
    pub kind: u8,
    /// Executor-assigned sequence number ([`REC_SEAL`]: the next unused
    /// sequence number, i.e. the count of updates accepted before it).
    pub seq: u64,
    /// The accepted update (zeroed for a seal record).
    pub update: WireUpdate,
    /// Arrival instant at the executor, microseconds on its clock axis.
    pub arrival_micros: i64,
}

impl WalRecord {
    /// Record for one accepted update.
    #[must_use]
    pub fn update(seq: u64, update: WireUpdate, arrival_micros: i64) -> Self {
        WalRecord {
            kind: REC_UPDATE,
            seq,
            update,
            arrival_micros,
        }
    }

    /// Clean end-of-segment marker.
    #[must_use]
    pub fn seal(next_seq: u64) -> Self {
        WalRecord {
            kind: REC_SEAL,
            seq: next_seq,
            update: WireUpdate {
                class: 0,
                index: 0,
                generation_micros: 0,
                payload: 0.0,
                attr_mask: 0,
            },
            arrival_micros: 0,
        }
    }

    /// Encodes to the fixed 50-byte wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; REC_LEN] {
        let mut b = [0u8; REC_LEN];
        b[0] = self.kind;
        put_u64(&mut b, 1, self.seq);
        b[9] = self.update.class;
        put_u32(&mut b, 10, self.update.index);
        put_u64(&mut b, 14, self.update.generation_micros as u64);
        put_u64(&mut b, 22, self.update.payload.to_bits());
        put_u64(&mut b, 30, self.update.attr_mask);
        put_u64(&mut b, 38, self.arrival_micros as u64);
        let crc = crc32(&b[..REC_LEN - 4]);
        put_u32(&mut b, REC_LEN - 4, crc);
        b
    }

    /// Decodes one record; rejects short buffers, checksum mismatches, and
    /// unknown kinds.
    ///
    /// # Errors
    ///
    /// [`WalError::Truncated`], [`WalError::BadCrc`], or
    /// [`WalError::BadKind`].
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, WalError> {
        if bytes.len() < REC_LEN {
            return Err(WalError::Truncated);
        }
        let b = &bytes[..REC_LEN];
        if get_u32(b, REC_LEN - 4) != crc32(&b[..REC_LEN - 4]) {
            return Err(WalError::BadCrc);
        }
        let kind = b[0];
        if kind != REC_UPDATE && kind != REC_SEAL {
            return Err(WalError::BadKind(kind));
        }
        Ok(WalRecord {
            kind,
            seq: get_u64(b, 1),
            update: WireUpdate {
                class: b[9],
                index: get_u32(b, 10),
                generation_micros: get_u64(b, 14) as i64,
                payload: f64::from_bits(get_u64(b, 22)),
                attr_mask: get_u64(b, 30),
            },
            arrival_micros: get_u64(b, 38) as i64,
        })
    }
}

/// Decoded segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Config fingerprint the segment was written under.
    pub fingerprint: u64,
    /// Sequence number of the first record this segment may hold.
    pub base_seq: u64,
}

impl SegmentHeader {
    /// Encodes to the fixed 32-byte wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; HDR_LEN] {
        let mut b = [0u8; HDR_LEN];
        b[..8].copy_from_slice(&WAL_MAGIC);
        put_u32(&mut b, 8, WAL_VERSION);
        put_u64(&mut b, 12, self.fingerprint);
        put_u64(&mut b, 20, self.base_seq);
        let crc = crc32(&b[..HDR_LEN - 4]);
        put_u32(&mut b, HDR_LEN - 4, crc);
        b
    }

    /// Decodes a header; rejects short buffers, bad magic, unknown
    /// versions, and checksum mismatches.
    ///
    /// # Errors
    ///
    /// [`WalError::Truncated`], [`WalError::BadMagic`],
    /// [`WalError::BadVersion`], or [`WalError::BadCrc`].
    pub fn decode(bytes: &[u8]) -> Result<SegmentHeader, WalError> {
        if bytes.len() < HDR_LEN {
            return Err(WalError::Truncated);
        }
        let b = &bytes[..HDR_LEN];
        if b[..8] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        if get_u32(b, HDR_LEN - 4) != crc32(&b[..HDR_LEN - 4]) {
            return Err(WalError::BadCrc);
        }
        let version = get_u32(b, 8);
        if version != WAL_VERSION {
            return Err(WalError::BadVersion(version));
        }
        Ok(SegmentHeader {
            fingerprint: get_u64(b, 12),
            base_seq: get_u64(b, 20),
        })
    }
}

/// Result of scanning a whole segment: the valid record prefix plus how
/// many trailing (torn or corrupt) records were discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentScan {
    /// The segment header.
    pub header: SegmentHeader,
    /// Every valid record up to (and including) a seal, in log order.
    pub records: Vec<WalRecord>,
    /// Whole-or-partial trailing records dropped at the first torn or
    /// CRC-failing position (the longest-valid-prefix rule).
    pub discarded: u64,
    /// The scan ended at a [`REC_SEAL`] record (clean shutdown).
    pub sealed: bool,
}

/// Scans `bytes` as one segment, enforcing the header and keeping the
/// longest valid record prefix. `expected_fingerprint` guards replay under
/// a different configuration.
///
/// # Errors
///
/// Header-level problems ([`WalError::BadMagic`], [`WalError::BadCrc`],
/// [`WalError::BadVersion`], [`WalError::Truncated`],
/// [`WalError::FingerprintMismatch`]) fail the whole scan — a bad header
/// means nothing in the file can be trusted. Record-level corruption is
/// NOT an error: it truncates the scan and is reported via `discarded`.
pub fn scan_segment(bytes: &[u8], expected_fingerprint: u64) -> Result<SegmentScan, WalError> {
    let header = SegmentHeader::decode(bytes)?;
    if header.fingerprint != expected_fingerprint {
        return Err(WalError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: header.fingerprint,
        });
    }
    let mut records = Vec::new();
    let mut pos = HDR_LEN;
    let mut sealed = false;
    while pos < bytes.len() {
        match WalRecord::decode(&bytes[pos..]) {
            Ok(rec) => {
                pos += REC_LEN;
                let is_seal = rec.kind == REC_SEAL;
                records.push(rec);
                if is_seal {
                    sealed = true;
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let left = bytes.len().saturating_sub(pos);
    let discarded = if sealed {
        // Bytes after a seal are stale pre-truncation leftovers, not loss.
        0
    } else {
        (left as u64).div_ceil(REC_LEN as u64)
    };
    Ok(SegmentScan {
        header,
        records,
        discarded,
        sealed,
    })
}

// ---- shared counters --------------------------------------------------------

/// Flusher-side counters shared with the executor (for `/metrics`, the
/// [`RunReport`](strip_core::report::RunReport), and the ack barrier).
#[derive(Debug)]
pub struct WalStats {
    appended: AtomicU64,
    /// Next sequence number NOT yet handed to the OS via `write` — the
    /// ack barrier waits on this, because completed writes survive
    /// `kill -9` (the page cache belongs to the kernel, not the process).
    written: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
    group_max: AtomicU64,
    snapshots: AtomicU64,
    rotations: AtomicU64,
    failed: AtomicBool,
}

impl WalStats {
    fn new(base_seq: u64) -> Self {
        WalStats {
            appended: AtomicU64::new(0),
            written: AtomicU64::new(base_seq),
            fsyncs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            group_max: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            failed: AtomicBool::new(false),
        }
    }

    /// Next sequence number not yet `write`-durable.
    #[must_use]
    pub fn written_seq(&self) -> u64 {
        self.written.load(Ordering::Acquire)
    }

    /// The flusher hit an I/O error and stopped (appends are dropped,
    /// barriers return immediately; the run continues undurable).
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Point-in-time durability counters (recovery fields are the
    /// executor's to fill).
    #[must_use]
    pub fn durability(&self) -> DurabilityStats {
        DurabilityStats {
            wal_appended: self.appended.load(Ordering::Relaxed),
            wal_fsyncs: self.fsyncs.load(Ordering::Relaxed),
            wal_bytes: self.bytes.load(Ordering::Relaxed),
            wal_group_max: self.group_max.load(Ordering::Relaxed),
            snapshots_written: self.snapshots.load(Ordering::Relaxed),
            wal_rotations: self.rotations.load(Ordering::Relaxed),
            recovery_replayed: 0,
            recovery_discarded: 0,
        }
    }
}

/// One accepted update awaiting encode — buffered raw on the executor
/// side so the hot path pays a plain struct copy; the flusher thread does
/// the encode + CRC work along with the `write`.
#[derive(Debug, Clone, Copy)]
struct RawRecord {
    seq: u64,
    update: WireUpdate,
    arrival_micros: i64,
}

enum WalMsg {
    /// A batch of raw records, in sequence order.
    Chunk(Vec<RawRecord>),
    Snapshot {
        bytes: Vec<u8>,
        next_seq: u64,
    },
}

/// Records buffered executor-side before one ring handoff. Amortises the
/// SPSC push (and its cache-line traffic) across many appends; the
/// executor flushes partial chunks every quantum and before any barrier,
/// so the handoff delay is bounded by the quantum, far inside every group
/// cadence.
const CHUNK_RECORDS: usize = 256;

// ---- executor-side handle ---------------------------------------------------

/// Executor-side handle to the flusher thread: appends records, requests
/// snapshots, waits on the write barrier, and seals on shutdown.
#[derive(Debug)]
pub struct WalHandle {
    tx: spsc::Producer<WalMsg>,
    pending: Vec<RawRecord>,
    stats: Arc<WalStats>,
    flusher: JoinHandle<io::Result<()>>,
}

impl WalHandle {
    /// Creates the WAL directory, starts a fresh segment at `base_seq`
    /// (truncating any previous one — recovery snapshots its result first,
    /// see [`crate::recovery::recover`]), and spawns the flusher thread.
    ///
    /// # Errors
    ///
    /// Directory creation, segment open/write/sync, or thread spawn
    /// failures.
    pub fn start(cfg: &DurabilityConfig, fingerprint: u64, base_seq: u64) -> io::Result<WalHandle> {
        std::fs::create_dir_all(&cfg.dir)?;
        // Any sealed chain in the directory predates this segment (the
        // recovery re-base snapshot already covers it); starting fresh
        // must not leave stale links a later recovery would replay.
        remove_rotated(&cfg.dir)?;
        let path = cfg.dir.join(SEGMENT_FILE);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let header = SegmentHeader {
            fingerprint,
            base_seq,
        }
        .encode();
        file.write_all(&header)?;
        file.sync_all()?;
        let stats = Arc::new(WalStats::new(base_seq));
        stats.bytes.fetch_add(HDR_LEN as u64, Ordering::Relaxed);
        let (tx, rx) = spsc::ring(WAL_RING_CAPACITY);
        let dir = cfg.dir.clone();
        let policy = cfg.fsync;
        let rotate_bytes = cfg.rotate_bytes;
        let flusher_stats = Arc::clone(&stats);
        let flusher = std::thread::Builder::new()
            .name("stripd-wal".into())
            .spawn(move || {
                let res = flusher_loop(
                    file,
                    dir,
                    fingerprint,
                    rx,
                    policy,
                    rotate_bytes,
                    &flusher_stats,
                );
                if res.is_err() {
                    flusher_stats.failed.store(true, Ordering::Release);
                }
                res
            })?;
        Ok(WalHandle {
            tx,
            pending: Vec::with_capacity(CHUNK_RECORDS),
            stats,
            flusher,
        })
    }

    /// Appends one accepted update: a plain struct copy into the pending
    /// chunk — no encode, no CRC, no atomics on the hot path. Full chunks
    /// are handed to the flusher; call [`WalHandle::flush`] at quantum
    /// boundaries to bound the handoff delay of partial ones.
    pub fn append(&mut self, seq: u64, update: WireUpdate, arrival_micros: i64) {
        self.pending.push(RawRecord {
            seq,
            update,
            arrival_micros,
        });
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        if self.pending.len() >= CHUNK_RECORDS {
            self.flush();
        }
    }

    /// Hands the buffered partial chunk to the flusher. Never blocks on
    /// I/O; spins only if the flusher is a full ring behind (and gives up
    /// if it has died, so a disk failure degrades the run instead of
    /// wedging the executor).
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let chunk = std::mem::replace(&mut self.pending, Vec::with_capacity(CHUNK_RECORDS));
        self.push_msg(WalMsg::Chunk(chunk));
    }

    fn push_msg(&mut self, mut msg: WalMsg) {
        loop {
            match self.tx.push(msg) {
                Ok(()) => return,
                Err(m) => {
                    if self.stats.is_failed() {
                        return;
                    }
                    msg = m;
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Hands an encoded store snapshot to the flusher; once persisted
    /// (atomic write-rename) the flusher truncates the segment to a fresh
    /// header at `next_seq`. Flushes the pending chunk first — records
    /// below `next_seq` must reach the old segment before it is cut.
    pub fn request_snapshot(&mut self, bytes: Vec<u8>, next_seq: u64) {
        self.flush();
        self.push_msg(WalMsg::Snapshot { bytes, next_seq });
    }

    /// The ack barrier: flushes the pending chunk, then blocks until every
    /// record below `next_seq` has been `write`-handed to the OS (NOT
    /// necessarily fsynced — see [`WalStats::written`]). Called before a
    /// stats reply is sent, so "acked" implies "survives `kill -9`" at
    /// every fsync cadence.
    pub fn barrier(&mut self, next_seq: u64) {
        self.flush();
        while self.stats.written_seq() < next_seq && !self.stats.is_failed() {
            std::thread::yield_now();
        }
    }

    /// Shared counters (live view; also read for `/metrics`).
    #[must_use]
    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// Closes the ring and joins the flusher, which drains every pending
    /// record, appends a [`REC_SEAL`] marker, and fsyncs — an orderly
    /// shutdown (clean frame or SIGTERM/SIGINT) is never lossy.
    ///
    /// # Errors
    ///
    /// Any I/O error the flusher hit, or an error if it panicked.
    pub fn seal(mut self) -> io::Result<()> {
        self.flush();
        let WalHandle {
            tx,
            pending: _,
            stats: _,
            flusher,
        } = self;
        drop(tx); // closes the ring; the flusher sees it drained
        match flusher.join() {
            Ok(res) => res,
            Err(_) => Err(io::Error::other("wal flusher thread panicked")),
        }
    }
}

// ---- flusher thread ---------------------------------------------------------

/// Seals the active segment (chain-link seal at `next_seq`), renames it
/// into the rotated chain at `idx`, and opens a fresh active segment with
/// `base_seq = next_seq`. Both files and the directory are synced: the
/// sealed link is fully durable before the new active segment exists.
fn rotate_segment(
    file: &mut File,
    dir: &std::path::Path,
    fingerprint: u64,
    idx: u64,
    next_seq: u64,
    stats: &WalStats,
) -> io::Result<u64> {
    let seal = WalRecord::seal(next_seq).encode();
    file.write_all(&seal)?;
    file.sync_all()?;
    stats.bytes.fetch_add(REC_LEN as u64, Ordering::Relaxed);
    stats.fsyncs.fetch_add(1, Ordering::Relaxed);
    std::fs::rename(dir.join(SEGMENT_FILE), dir.join(rotated_segment_name(idx)))?;
    sync_dir(dir)?;
    let mut fresh = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(dir.join(SEGMENT_FILE))?;
    let header = SegmentHeader {
        fingerprint,
        base_seq: next_seq,
    }
    .encode();
    fresh.write_all(&header)?;
    fresh.sync_all()?;
    sync_dir(dir)?;
    stats.bytes.fetch_add(HDR_LEN as u64, Ordering::Relaxed);
    stats.rotations.fetch_add(1, Ordering::Relaxed);
    *file = fresh;
    Ok(HDR_LEN as u64)
}

#[allow(clippy::too_many_lines)]
fn flusher_loop(
    mut file: File,
    dir: PathBuf,
    fingerprint: u64,
    mut rx: spsc::Consumer<WalMsg>,
    policy: FsyncPolicy,
    rotate_bytes: u64,
    stats: &WalStats,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(256 * REC_LEN);
    let mut unsynced: u64 = 0;
    let mut last_sync = Instant::now();
    // Active-segment length and next rotation index. `start` truncates
    // the segment to a bare header and clears the chain, so both begin
    // at their fresh-segment values.
    let mut seg_bytes: u64 = HDR_LEN as u64;
    let mut rotate_idx: u64 = 0;
    loop {
        // Drain whatever has accumulated into one write. A snapshot message
        // is a batch boundary: records before it must land in the old
        // segment, records after it in the truncated one.
        buf.clear();
        let mut last_seq = None;
        let mut pending_snapshot = None;
        while let Some(msg) = rx.pop() {
            match msg {
                WalMsg::Chunk(records) => {
                    for r in &records {
                        let rec = WalRecord::update(r.seq, r.update, r.arrival_micros);
                        buf.extend_from_slice(&rec.encode());
                        last_seq = Some(r.seq);
                    }
                }
                WalMsg::Snapshot { bytes, next_seq } => {
                    pending_snapshot = Some((bytes, next_seq));
                    break;
                }
            }
        }
        if let Some(seq) = last_seq {
            file.write_all(&buf)?;
            stats.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
            seg_bytes += buf.len() as u64;
            unsynced += (buf.len() / REC_LEN) as u64;
            // The barrier releases only after write_all returned: the
            // records are the kernel's problem now and survive kill -9.
            stats.written.store(seq + 1, Ordering::Release);
            if rotate_bytes > 0 && seg_bytes >= rotate_bytes {
                // Size bound reached: seal this segment into the chain
                // and continue in a fresh one. Unsynced records were just
                // fsynced by the rotation's seal.
                seg_bytes =
                    rotate_segment(&mut file, &dir, fingerprint, rotate_idx, seq + 1, stats)?;
                rotate_idx += 1;
                if unsynced > 0 {
                    stats.group_max.fetch_max(unsynced, Ordering::Relaxed);
                }
                unsynced = 0;
                last_sync = Instant::now();
            }
        }
        if let Some((bytes, next_seq)) = pending_snapshot {
            // Persist the snapshot durably (write-rename, fsync file and
            // directory), THEN truncate: at no instant is state that is
            // only in the log unreachable. The sealed chain is redundant
            // once the snapshot covers it, so it is deleted afterwards.
            crate::snapshot::write_atomic(&dir, &bytes)?;
            stats.snapshots.fetch_add(1, Ordering::Relaxed);
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let header = SegmentHeader {
                fingerprint,
                base_seq: next_seq,
            }
            .encode();
            file.write_all(&header)?;
            file.sync_all()?;
            remove_rotated(&dir)?;
            sync_dir(&dir)?;
            stats.bytes.fetch_add(HDR_LEN as u64, Ordering::Relaxed);
            seg_bytes = HDR_LEN as u64;
            unsynced = 0;
            last_sync = Instant::now();
            continue; // more messages may already be queued
        }
        let sync_due = match policy {
            FsyncPolicy::Always => unsynced > 0,
            FsyncPolicy::Group(us) => {
                unsynced > 0 && last_sync.elapsed() >= Duration::from_micros(us)
            }
            FsyncPolicy::Off => false,
        };
        if sync_due {
            file.sync_data()?;
            stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            stats.group_max.fetch_max(unsynced, Ordering::Relaxed);
            unsynced = 0;
            last_sync = Instant::now();
        }
        if rx.is_closed() && rx.is_empty() {
            let seal = WalRecord::seal(stats.written.load(Ordering::Relaxed)).encode();
            file.write_all(&seal)?;
            stats.bytes.fetch_add(REC_LEN as u64, Ordering::Relaxed);
            // Sealing is the orderly-shutdown path: make it durable even
            // under `--fsync off`.
            file.sync_all()?;
            stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            if unsynced > 0 {
                stats.group_max.fetch_max(unsynced, Ordering::Relaxed);
            }
            return Ok(());
        }
        if last_seq.is_none() {
            // Idle: nap briefly. Bounded well under every group cadence so
            // a due fsync or a close is noticed promptly.
            let nap = match policy {
                FsyncPolicy::Group(us) => us.clamp(20, 200),
                _ => 100,
            };
            std::thread::sleep(Duration::from_micros(nap));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update(seq: u64) -> WalRecord {
        WalRecord::update(
            seq,
            WireUpdate {
                class: (seq % 2) as u8,
                index: (seq % 7) as u32,
                generation_micros: (seq as i64).wrapping_mul(131) - 5_000,
                payload: 0.25 + seq as f64,
                attr_mask: u64::MAX >> (seq % 17),
            },
            (seq as i64).wrapping_add(1_000),
        )
    }

    fn segment(fingerprint: u64, base_seq: u64, n: u64) -> Vec<u8> {
        let mut bytes = SegmentHeader {
            fingerprint,
            base_seq,
        }
        .encode()
        .to_vec();
        for seq in base_seq..base_seq + n {
            bytes.extend_from_slice(&sample_update(seq).encode());
        }
        bytes
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise_reference() {
        // Lengths straddling the 8-byte chunk boundary, including 46
        // (record body) and 28 (header body).
        let data: Vec<u8> = (0u16..512)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 28, 46, 63, 64, 255, 512] {
            let bytes = &data[..len];
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(bytes), c ^ 0xFFFF_FFFF, "len {len}");
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips_exactly() {
        for seq in [0, 1, 7, u64::from(u32::MAX), u64::MAX / 2] {
            let rec = sample_update(seq);
            let decoded = WalRecord::decode(&rec.encode()).expect("valid record");
            assert_eq!(decoded, rec);
        }
        let seal = WalRecord::seal(42);
        assert_eq!(WalRecord::decode(&seal.encode()).expect("seal"), seal);
    }

    #[test]
    fn record_rejects_corruption_truncation_and_bad_kind() {
        let rec = sample_update(9).encode();
        assert!(matches!(
            WalRecord::decode(&rec[..REC_LEN - 1]),
            Err(WalError::Truncated)
        ));
        for pos in 0..REC_LEN {
            let mut bad = rec;
            bad[pos] ^= 0x40;
            let err = WalRecord::decode(&bad).expect_err("corruption must be caught");
            assert!(
                matches!(err, WalError::BadCrc | WalError::BadKind(_)),
                "byte {pos}: {err}"
            );
        }
    }

    #[test]
    fn header_round_trips_and_rejects_tampering() {
        let hdr = SegmentHeader {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            base_seq: 77,
        };
        let bytes = hdr.encode();
        assert_eq!(SegmentHeader::decode(&bytes).expect("valid header"), hdr);

        let mut bad = bytes;
        bad[0] = b'X';
        assert!(matches!(
            SegmentHeader::decode(&bad),
            Err(WalError::BadMagic)
        ));

        let mut bad = bytes;
        bad[8] ^= 0xFF; // version field
        assert!(matches!(
            SegmentHeader::decode(&bad),
            Err(WalError::BadVersion(_)) | Err(WalError::BadCrc)
        ));

        let mut bad = bytes;
        bad[20] ^= 0x01; // base_seq: caught by the header CRC
        assert!(matches!(SegmentHeader::decode(&bad), Err(WalError::BadCrc)));

        assert!(matches!(
            SegmentHeader::decode(&bytes[..HDR_LEN - 1]),
            Err(WalError::Truncated)
        ));
    }

    #[test]
    fn scan_keeps_longest_valid_prefix_on_torn_tail() {
        let full = segment(1, 0, 4);
        // Tear the segment at every byte boundary inside the record area.
        for cut in HDR_LEN..full.len() {
            let scan = scan_segment(&full[..cut], 1).expect("header intact");
            let whole = (cut - HDR_LEN) / REC_LEN;
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            assert_eq!(
                scan.discarded,
                u64::from(!(cut - HDR_LEN).is_multiple_of(REC_LEN))
            );
            assert!(!scan.sealed);
            for (i, rec) in scan.records.iter().enumerate() {
                assert_eq!(*rec, sample_update(i as u64));
            }
        }
    }

    #[test]
    fn scan_discards_everything_after_first_corrupt_record() {
        let mut bytes = segment(1, 0, 5);
        bytes[HDR_LEN + 2 * REC_LEN + 10] ^= 0x80; // corrupt record 2 of 5
        let scan = scan_segment(&bytes, 1).expect("header intact");
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.discarded, 3);
        assert!(!scan.sealed);
    }

    #[test]
    fn scan_stops_at_seal_and_ignores_stale_bytes_after_it() {
        let mut bytes = segment(1, 10, 2);
        bytes.extend_from_slice(&WalRecord::seal(12).encode());
        // Stale pre-truncation garbage past the seal must not count as loss.
        bytes.extend_from_slice(&[0xAB; 17]);
        let scan = scan_segment(&bytes, 1).expect("header intact");
        assert!(scan.sealed);
        assert_eq!(scan.discarded, 0);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].kind, REC_SEAL);
        assert_eq!(scan.records[2].seq, 12);
        assert_eq!(scan.header.base_seq, 10);
    }

    #[test]
    fn scan_rejects_fingerprint_mismatch() {
        let bytes = segment(7, 0, 1);
        assert!(matches!(
            scan_segment(&bytes, 8),
            Err(WalError::FingerprintMismatch {
                expected: 8,
                found: 7
            })
        ));
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("group:250us"),
            Some(FsyncPolicy::Group(250))
        );
        assert_eq!(
            FsyncPolicy::parse("group:1000"),
            Some(FsyncPolicy::Group(1000))
        );
        assert_eq!(FsyncPolicy::parse("group:0"), None);
        assert_eq!(FsyncPolicy::parse("group:"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Off,
            FsyncPolicy::Group(250),
        ] {
            assert_eq!(FsyncPolicy::parse(&p.to_string()), Some(p));
        }
    }

    #[test]
    fn handle_appends_then_seal_produces_replayable_segment() {
        let dir = std::env::temp_dir().join(format!("strip-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurabilityConfig::new(&dir);
        let mut wal = WalHandle::start(&cfg, 99, 0).expect("start wal");
        for seq in 0..64 {
            let rec = sample_update(seq);
            wal.append(seq, rec.update, rec.arrival_micros);
        }
        wal.barrier(64);
        let stats = wal.stats();
        assert_eq!(stats.written_seq(), 64);
        wal.seal().expect("seal");

        let bytes = std::fs::read(dir.join(SEGMENT_FILE)).expect("segment readable");
        let scan = scan_segment(&bytes, 99).expect("segment scans");
        assert!(scan.sealed);
        assert_eq!(scan.discarded, 0);
        assert_eq!(scan.records.len(), 65); // 64 updates + the seal
        assert_eq!(scan.records[64].seq, 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flusher_rotates_at_size_bound_and_chain_stays_contiguous() {
        let dir = std::env::temp_dir().join(format!("strip-wal-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = DurabilityConfig::new(&dir);
        // Rotate after roughly four records; exact chain layout depends
        // on the flusher's batching, so assert invariants, not counts.
        cfg.rotate_bytes = (HDR_LEN + 4 * REC_LEN) as u64;
        let mut wal = WalHandle::start(&cfg, 99, 0).expect("start wal");
        for seq in 0..64 {
            let rec = sample_update(seq);
            wal.append(seq, rec.update, rec.arrival_micros);
        }
        wal.barrier(64);
        let stats = wal.stats();
        // `barrier` only proves the records reached `write`; the rotation
        // that follows the batch write is the (joined) flusher's to
        // finish, so count rotations after `seal`.
        wal.seal().expect("seal");
        assert!(
            stats.durability().wal_rotations > 0,
            "64 records over a ~4-record bound must rotate at least once"
        );

        // Walk the chain exactly as recovery does: sealed links ascending,
        // the active segment last. Every interior link must be sealed and
        // clean; base_seq must chain onto the previous link's seal; and
        // the update sequence across the whole chain must be 0..64 in
        // order with no gap or duplicate.
        let chain = list_rotated(&dir).expect("list chain");
        assert!(!chain.is_empty(), "rotations must leave sealed links");
        let mut expected_base = 0u64;
        let mut next_update = 0u64;
        let mut segments: Vec<(Vec<u8>, bool)> = chain
            .iter()
            .map(|(_, p)| (std::fs::read(p).expect("link readable"), false))
            .collect();
        segments.push((
            std::fs::read(dir.join(SEGMENT_FILE)).expect("active readable"),
            true,
        ));
        for (bytes, is_final) in segments {
            let scan = scan_segment(&bytes, 99).expect("link scans");
            assert!(scan.sealed, "every link and the sealed tail end sealed");
            assert_eq!(scan.discarded, 0);
            assert_eq!(scan.header.base_seq, expected_base, "chain continuity");
            for rec in &scan.records {
                if rec.kind == REC_UPDATE {
                    assert_eq!(rec.seq, next_update, "update order across the chain");
                    next_update += 1;
                } else {
                    assert_eq!(rec.kind, REC_SEAL);
                    expected_base = rec.seq;
                }
            }
            if !is_final {
                assert_eq!(expected_base, next_update, "seal covers the link's tail");
            }
        }
        assert_eq!(next_update, 64, "no update lost or duplicated by rotation");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotated_names_list_in_order_and_ignore_strangers() {
        let dir = std::env::temp_dir().join(format!("strip-wal-names-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for idx in [3u64, 0, 12] {
            std::fs::write(dir.join(rotated_segment_name(idx)), b"x").expect("write");
        }
        for stranger in ["wal.seg", "snapshot.bin", "wal.abc.seg", "wal..seg"] {
            std::fs::write(dir.join(stranger), b"x").expect("write");
        }
        let listed: Vec<u64> = list_rotated(&dir)
            .expect("list")
            .into_iter()
            .map(|(idx, _)| idx)
            .collect();
        assert_eq!(listed, vec![0, 3, 12]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
