//! Crash harness: run the real `stripd` binary with a WAL, ack a seeded
//! burst through the stats barrier, `kill -9` the process mid-stream, and
//! restart with `--recover`. Every acknowledged update must survive — the
//! durability invariant the whole subsystem exists for. This is the
//! in-repo twin of the CI `recovery-smoke` job and of experiment figR2.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use strip_live::protocol::{read_msg, write_msg, Msg, WireQuery, WireUpdate};

const N_LOW: u32 = 16;
const N_HIGH: u32 = 16;

struct Server {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
    /// The `stripd recovered: ...` line, when started with `--recover`.
    recovered_line: Option<String>,
    /// All recovery banners — one `stripd recovered stripe=<s>: ...` line
    /// per stripe on a sharded server, or the single line above.
    recovered_lines: Vec<String>,
}

/// A panicking assertion must not leak the child: an orphaned stripd
/// holds the test harness pipes open forever.
impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Server {
    /// Spawns `stripd` on an ephemeral port and waits for the listening
    /// banner (and, with `--recover`, the recovery banner before it).
    fn spawn(wal_dir: &Path, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_stripd"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--n-low",
                &N_LOW.to_string(),
                "--n-high",
                &N_HIGH.to_string(),
                "--wal",
            ])
            .arg(wal_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn stripd");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut recovered_line = None;
        let mut recovered_lines = Vec::new();
        let addr = loop {
            let mut line = String::new();
            let n = stdout.read_line(&mut line).expect("read stripd banner");
            assert!(n > 0, "stripd exited before listening");
            if line.starts_with("stripd recovered:") {
                recovered_line = Some(line.trim().to_string());
                recovered_lines.push(line.trim().to_string());
            } else if line.starts_with("stripd recovered stripe=") {
                recovered_lines.push(line.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("stripd listening on ") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("addr in banner")
                    .to_string();
            }
        };
        Server {
            child,
            stdout,
            addr,
            recovered_line,
            recovered_lines,
        }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to stripd");
        stream.set_nodelay(true).expect("nodelay");
        stream
    }

    /// SIGKILL — the one stop with no orderly path, what the WAL is for.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 stripd");
        let _ = self.child.wait();
    }

    /// Wire shutdown; returns the report JSON from stdout.
    fn shutdown(mut self, stream: &mut TcpStream) -> String {
        write_msg(stream, &Msg::Shutdown).expect("send shutdown");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("read report");
        let status = self.child.wait().expect("wait stripd");
        assert!(status.success(), "stripd exited nonzero: {status:?}");
        rest
    }
}

/// Deterministic burst: `count` updates over the partitions, generations
/// strictly increasing so every install is worthy. Returns the expected
/// final (payload, generation) per object.
fn send_burst(stream: &mut TcpStream, start: u32, count: u32) -> HashMap<(u8, u32), (f64, i64)> {
    let mut expected = HashMap::new();
    for k in start..start + count {
        // LCG-ish spread over both classes, no wall-clock or entropy.
        let class = (k.wrapping_mul(2_654_435_761) >> 16 & 1) as u8;
        let index = k.wrapping_mul(40_503) % if class == 0 { N_LOW } else { N_HIGH };
        let generation_micros = 1_000 * i64::from(k + 1);
        let payload = f64::from(k) * 0.5 - 3.0;
        write_msg(
            stream,
            &Msg::Update(WireUpdate {
                class,
                index,
                generation_micros,
                payload,
                attr_mask: u64::MAX,
            }),
        )
        .expect("send update");
        expected.insert((class, index), (payload, generation_micros));
    }
    expected
}

/// Stats barrier: once a reply shows `ingested == total`, every update
/// sent before it has been accepted by the executor AND written into the
/// WAL segment (the executor waits on the flusher's written watermark
/// before replying), so a `kill -9` after this point may not lose any of
/// them. Polls on until `queued == 0` too, so queries that follow observe
/// the applied state, not a half-drained backlog.
fn ack_barrier(stream: &mut TcpStream, total: u64) {
    loop {
        write_msg(stream, &Msg::StatsRequest).expect("stats request");
        let s = match read_msg(stream).expect("stats reply") {
            Some(Msg::StatsResponse(s)) => s,
            other => panic!("expected StatsResponse, got {other:?}"),
        };
        if s.ingested == total && s.queued == 0 {
            return;
        }
        std::thread::yield_now();
    }
}

fn assert_state_matches(stream: &mut TcpStream, expected: &HashMap<(u8, u32), (f64, i64)>) {
    for (&(class, index), &(payload, generation_micros)) in expected {
        write_msg(stream, &Msg::Query(WireQuery { class, index })).expect("send query");
        match read_msg(stream).expect("query reply") {
            Some(Msg::QueryResponse(r)) => {
                assert_eq!(
                    r.payload.to_bits(),
                    payload.to_bits(),
                    "object ({class},{index}) lost its acked payload"
                );
                assert_eq!(
                    r.generation_micros, generation_micros,
                    "object ({class},{index}) lost its acked generation"
                );
            }
            other => panic!("expected QueryResponse, got {other:?}"),
        }
    }
}

fn scrape_metrics(server: &Server) -> String {
    let mut http = server.connect();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: stripd\r\n\r\n")
        .expect("send scrape");
    let mut page = String::new();
    http.read_to_string(&mut page).expect("read scrape");
    page
}

fn metric(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(name))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing:\n{page}"))
}

fn temp_wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_server_recovers_every_acked_update() {
    let dir = temp_wal_dir("kill-recover");

    // Phase 1: a server with a WAL, a burst, an ack, and a kill -9.
    // --snapshot-secs 3600 pins phase 1 to pure WAL replay (no periodic
    // snapshot re-base), so the replay count below is exact.
    let server = Server::spawn(&dir, &["--fsync", "group:250us", "--snapshot-secs", "3600"]);
    let mut stream = server.connect();
    let sent = 96u32;
    let expected = send_burst(&mut stream, 0, sent);
    ack_barrier(&mut stream, u64::from(sent));
    drop(stream);
    server.kill9();

    // Phase 2: restart with --recover. Every acked update must be back.
    let server = Server::spawn(
        &dir,
        &[
            "--fsync",
            "group:250us",
            "--snapshot-secs",
            "3600",
            "--recover",
        ],
    );
    let banner = server.recovered_line.clone().expect("recovery banner");
    assert!(
        banner.contains(&format!("replayed={sent}")) && banner.contains("discarded=0"),
        "acked updates went missing: {banner}"
    );

    let page = scrape_metrics(&server);
    assert_eq!(
        metric(&page, "strip_live_recovery_replayed_total "),
        u64::from(sent)
    );
    assert_eq!(metric(&page, "strip_live_recovery_discarded_total "), 0);

    let mut stream = server.connect();
    assert_state_matches(&mut stream, &expected);

    // The recovered server is a full server: it keeps accepting updates
    // and exits orderly with durability accounting in the report.
    let more = send_burst(&mut stream, 1_000, 8);
    ack_barrier(&mut stream, 8);
    assert_state_matches(&mut stream, &more);
    let report = server.shutdown(&mut stream);
    assert!(
        report.contains("\"durability\"") && report.contains("\"recovery_replayed\""),
        "report lacks durability accounting: {report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_composes_snapshot_base_with_wal_tail() {
    let dir = temp_wal_dir("snap-recover");

    // Aggressive snapshot cadence: the first burst lands in the snapshot
    // base, the second in the WAL tail past it.
    let server = Server::spawn(&dir, &["--fsync", "group:250us", "--snapshot-secs", "0.2"]);
    let mut stream = server.connect();
    let mut expected = send_burst(&mut stream, 0, 40);
    ack_barrier(&mut stream, 40);
    // Let at least one periodic snapshot be cut (live clock, 0.2s cadence).
    std::thread::sleep(std::time::Duration::from_millis(600));
    expected.extend(send_burst(&mut stream, 500, 24));
    ack_barrier(&mut stream, 64);
    drop(stream);
    server.kill9();

    let server = Server::spawn(&dir, &["--fsync", "group:250us", "--recover"]);
    let banner = server.recovered_line.clone().expect("recovery banner");
    assert!(
        banner.contains("snapshot=loaded"),
        "expected a snapshot base: {banner}"
    );
    let page = scrape_metrics(&server);
    assert!(
        metric(&page, "strip_live_recovery_replayed_total ") <= 64,
        "snapshot base should absorb part of the stream: {banner}"
    );

    let mut stream = server.connect();
    assert_state_matches(&mut stream, &expected);
    server.shutdown(&mut stream);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `key=value` integer field out of a recovery banner line.
fn banner_field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= in banner: {line}"))
}

#[test]
fn killed_striped_server_recovers_every_acked_update_across_stripes() {
    let dir = temp_wal_dir("stripe-recover");
    const STRIPES: usize = 4;

    // Phase 1: a 4-stripe server, each stripe with its own WAL segment
    // chain under stripe-<s>/. Snapshot cadence pinned out of the way so
    // the per-stripe replay counts below are exact.
    let server = Server::spawn(
        &dir,
        &[
            "--stripes",
            "4",
            "--fsync",
            "group:250us",
            "--snapshot-secs",
            "3600",
        ],
    );
    let mut stream = server.connect();
    let sent = 96u32;
    let expected = send_burst(&mut stream, 0, sent);
    ack_barrier(&mut stream, u64::from(sent));
    drop(stream);
    server.kill9();

    // Every stripe must have its own durability directory and segment.
    for s in 0..STRIPES {
        assert!(
            dir.join(format!("stripe-{s}")).join("wal.seg").is_file(),
            "stripe {s} has no WAL segment"
        );
    }

    // Phase 2: recover. Stripes replay independently; the banners must
    // account for every acked update with nothing discarded, and the
    // recovered state must match object for object through the router.
    let server = Server::spawn(
        &dir,
        &[
            "--stripes",
            "4",
            "--fsync",
            "group:250us",
            "--snapshot-secs",
            "3600",
            "--recover",
        ],
    );
    assert_eq!(
        server.recovered_lines.len(),
        STRIPES,
        "one recovery banner per stripe: {:?}",
        server.recovered_lines
    );
    let replayed: u64 = server
        .recovered_lines
        .iter()
        .map(|l| banner_field(l, "replayed"))
        .sum();
    let discarded: u64 = server
        .recovered_lines
        .iter()
        .map(|l| banner_field(l, "discarded"))
        .sum();
    assert_eq!(
        replayed,
        u64::from(sent),
        "acked updates went missing: {:?}",
        server.recovered_lines
    );
    assert_eq!(discarded, 0, "{:?}", server.recovered_lines);

    let page = scrape_metrics(&server);
    assert_eq!(
        metric(&page, "strip_live_recovery_replayed_total "),
        u64::from(sent),
        "merged report must sum per-stripe replay"
    );
    for s in 0..STRIPES {
        assert!(
            page.contains(&format!(
                "strip_live_stripe_updates_ingested{{stripe=\"{s}\"}}"
            )),
            "missing per-stripe series for stripe {s}:\n{page}"
        );
    }

    let mut stream = server.connect();
    assert_state_matches(&mut stream, &expected);

    // Still a full server after recovery: more traffic, orderly exit.
    let more = send_burst(&mut stream, 1_000, 8);
    ack_barrier(&mut stream, 8);
    assert_state_matches(&mut stream, &more);
    let report = server.shutdown(&mut stream);
    assert!(
        report.contains("\"stripes\"") && report.contains("\"durability\""),
        "merged report lacks stripe accounting: {report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_on_empty_directory_is_a_cold_start() {
    let dir = temp_wal_dir("cold-recover");
    let server = Server::spawn(&dir, &["--recover"]);
    let banner = server.recovered_line.clone().expect("recovery banner");
    assert!(
        banner.contains("snapshot=none") && banner.contains("replayed=0"),
        "cold start misread: {banner}"
    );
    let mut stream = server.connect();
    let expected = send_burst(&mut stream, 0, 8);
    ack_barrier(&mut stream, 8);
    assert_state_matches(&mut stream, &expected);
    server.shutdown(&mut stream);
    let _ = std::fs::remove_dir_all(&dir);
}
