//! End-to-end smoke test over a real TCP socket: frames in, stats and
//! metrics out, conservation on shutdown. This is the in-repo twin of
//! the CI `live-smoke` job.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};

use strip_core::config::{Policy, SimConfig};
use strip_live::executor::LiveConfig;
use strip_live::protocol::{read_msg, write_msg, Msg, WireQuery, WireTxn, WireUpdate};
use strip_live::server::{serve, RING_CAPACITY};

fn live_cfg(policy: Policy) -> LiveConfig {
    let sim = SimConfig::builder()
        .n_low(16)
        .n_high(16)
        .lambda_u(0.0)
        .lambda_t(0.0)
        .duration(1.0)
        .warmup(0.0)
        .policy(policy)
        .build()
        .expect("valid config");
    LiveConfig::new(sim).expect("valid live config")
}

fn connect(handle_addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(handle_addr).expect("connect to stripd");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

#[test]
fn tcp_updates_are_conserved_and_queries_answered() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = serve(&live_cfg(Policy::TransactionsFirst), listener).expect("serve");
    let mut stream = connect(handle.addr());

    // A burst of updates: two per object so the later generation wins.
    let n_updates = 24u32;
    for i in 0..n_updates {
        let msg = Msg::Update(WireUpdate {
            class: (i % 2) as u8,
            index: i % 4,
            generation_micros: 1_000 * i64::from(i + 1),
            payload: f64::from(i),
            attr_mask: u64::MAX,
        });
        write_msg(&mut stream, &msg).expect("send update");
    }
    // One transaction reading a known object.
    let txn = Msg::Txn(WireTxn {
        id: 7,
        class: 0,
        value: 5.0,
        slack_micros: 500_000,
        compute_micros: 100,
        reads: vec![(0, 1)],
    });
    write_msg(&mut stream, &txn).expect("send txn");

    // Poll stats until everything sent has been ingested and the
    // backlog has drained — under TF the installs happen in the
    // background once the transaction is out of the way.
    let stats = loop {
        write_msg(&mut stream, &Msg::StatsRequest).expect("stats request");
        let s = match read_msg(&mut stream).expect("stats reply") {
            Some(Msg::StatsResponse(s)) => s,
            other => panic!("expected StatsResponse, got {other:?}"),
        };
        if s.ingested == u64::from(n_updates) && s.txns_arrived == 1 && s.queued == 0 {
            break s;
        }
        std::thread::yield_now();
    };
    assert_eq!(
        stats.ingested,
        stats.applied + stats.superseded + stats.shed + stats.queued,
        "conservation must hold at every snapshot: {stats:?}"
    );

    // Query an object the burst wrote (even i => class 0, index in {0, 2}).
    write_msg(&mut stream, &Msg::Query(WireQuery { class: 0, index: 2 })).expect("send query");
    match read_msg(&mut stream).expect("query reply") {
        Some(Msg::QueryResponse(r)) => {
            assert!(r.generation_micros > 0, "object should have been updated");
            assert!(r.payload.is_finite());
        }
        other => panic!("expected QueryResponse, got {other:?}"),
    }

    // Ask for the full report over the wire.
    write_msg(&mut stream, &Msg::ReportRequest).expect("report request");
    match read_msg(&mut stream).expect("report reply") {
        Some(Msg::ReportJson(json)) => {
            assert!(
                json.contains("\"updates\""),
                "report JSON looks wrong: {json}"
            );
        }
        other => panic!("expected ReportJson, got {other:?}"),
    }

    // Shut down via the wire and check final conservation.
    write_msg(&mut stream, &Msg::Shutdown).expect("send shutdown");
    drop(stream);
    let report = handle.wait().expect("clean shutdown");
    assert_eq!(report.updates.arrived, u64::from(n_updates));
    assert_eq!(
        report.updates.terminal_total(),
        report.updates.arrived,
        "ingested == applied + shed + discarded + queued must hold at exit"
    );
}

/// The batched twin of the conservation test: updates travel in
/// `UpdateBatch` frames under credit flow control, a shutdown arrives
/// right behind the last batch, and the final report must still account
/// for every update (the executor drains the ingest ring before
/// finalising).
#[test]
fn batched_updates_are_conserved_through_shutdown() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = serve(&live_cfg(Policy::UpdatesFirst), listener).expect("serve");
    let mut stream = connect(handle.addr());

    // Opt into flow control; the initial grant is one full ring.
    write_msg(&mut stream, &Msg::CreditRequest).expect("credit request");
    let mut credit = match read_msg(&mut stream).expect("credit reply") {
        Some(Msg::Credit(g)) => g,
        other => panic!("expected Credit, got {other:?}"),
    };
    assert_eq!(credit as usize, RING_CAPACITY, "initial window is one ring");

    // Several batches, including an empty one (legal, a no-op).
    let batches: [u32; 4] = [5, 0, 17, 3];
    let mut sent = 0u64;
    for (b, n) in batches.iter().enumerate() {
        let updates: Vec<WireUpdate> = (0..*n)
            .map(|i| WireUpdate {
                class: (i % 2) as u8,
                index: i % 8,
                generation_micros: 1_000 * (i64::from(i) + 100 * b as i64 + 1),
                payload: f64::from(i),
                attr_mask: u64::MAX,
            })
            .collect();
        sent += u64::from(*n);
        credit = credit.checked_sub(u64::from(*n)).expect("within window");
        write_msg(&mut stream, &Msg::UpdateBatch(updates)).expect("send batch");
    }
    assert!(credit > 0);

    // The stats barrier must observe every batched update: the server
    // flushes the ring before forwarding the snapshot request.
    write_msg(&mut stream, &Msg::StatsRequest).expect("stats request");
    let stats = loop {
        match read_msg(&mut stream).expect("stats reply") {
            Some(Msg::Credit(_)) => continue, // absorb any top-up
            Some(Msg::StatsResponse(s)) => break s,
            other => panic!("expected StatsResponse, got {other:?}"),
        }
    };
    assert_eq!(stats.ingested, sent, "barrier saw a partial stream");
    assert_eq!(
        stats.ingested,
        stats.applied + stats.superseded + stats.shed + stats.queued,
        "conservation must hold at the batched snapshot: {stats:?}"
    );

    // One more batch immediately followed by a shutdown frame: the ring
    // still holds these when the stop lands, and they must be drained
    // into the final accounting.
    let tail: Vec<WireUpdate> = (0..9u32)
        .map(|i| WireUpdate {
            class: 1,
            index: i % 8,
            generation_micros: 900_000 + i64::from(i),
            payload: -f64::from(i),
            attr_mask: u64::MAX,
        })
        .collect();
    sent += tail.len() as u64;
    write_msg(&mut stream, &Msg::UpdateBatch(tail)).expect("send tail batch");
    write_msg(&mut stream, &Msg::Shutdown).expect("send shutdown");
    drop(stream);
    let report = handle.wait().expect("clean shutdown");
    assert_eq!(report.updates.arrived, sent);
    assert_eq!(
        report.updates.terminal_total(),
        report.updates.arrived,
        "batched-path conservation must hold at exit"
    );
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = serve(&live_cfg(Policy::UpdatesFirst), listener).expect("serve");

    // Feed one update through a binary connection first.
    let mut stream = connect(handle.addr());
    write_msg(
        &mut stream,
        &Msg::Update(WireUpdate {
            class: 0,
            index: 0,
            generation_micros: 1_000,
            payload: 1.0,
            attr_mask: u64::MAX,
        }),
    )
    .expect("send update");
    // StatsRequest acts as a barrier: the reply is only sent once the
    // executor has drained everything queued before it.
    write_msg(&mut stream, &Msg::StatsRequest).expect("stats request");
    let _ = read_msg(&mut stream).expect("stats reply");

    // Scrape /metrics over a plain-HTTP connection to the same port.
    let mut http = connect(handle.addr());
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: stripd\r\n\r\n")
        .expect("send scrape");
    let mut page = String::new();
    http.read_to_string(&mut page).expect("read scrape");
    assert!(page.starts_with("HTTP/1.1 200 OK"), "bad status: {page}");
    assert!(
        page.contains("strip_live_updates_ingested_total 1"),
        "{page}"
    );
    assert!(page.contains("strip_live_fold{class=\"low\"}"), "{page}");

    let report = handle.shutdown().expect("clean shutdown");
    assert_eq!(report.updates.arrived, 1);
}
