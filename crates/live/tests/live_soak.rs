//! Cross-validation soak: the live runtime must reproduce the
//! simulator's *qualitative* findings, not just stay up.
//!
//! Ignored by default (each test burns seconds of real CPU); the CI
//! `live-smoke` job runs them with `--ignored`.

use std::net::TcpListener;
use std::sync::mpsc;

use strip_core::config::{Policy, SimConfig};
use strip_core::report::RunReport;
use strip_db::staleness::StalenessSpec;
use strip_live::clock::LiveClock;
use strip_live::executor::{Ingest, LiveConfig};
use strip_live::loadgen::replay;
use strip_live::protocol::{WireQuery, WireTxn, WireUpdate};
use strip_live::server::serve;

/// Runs one live server under `policy` with UU staleness and replays the
/// same seeded workload against it; returns the server's final report.
fn soak(policy: Policy) -> RunReport {
    let sim = SimConfig::builder()
        .n_low(32)
        .n_high(32)
        .lambda_u(0.0)
        .lambda_t(0.0)
        .duration(60.0)
        .warmup(0.0)
        .staleness(StalenessSpec::UnappliedUpdate)
        .policy(policy)
        .build()
        .expect("valid server config");
    let cfg = LiveConfig::new(sim).expect("valid live config");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = serve(&cfg, listener).expect("serve");

    let load = SimConfig::builder()
        .n_low(32)
        .n_high(32)
        .lambda_u(600.0)
        .lambda_t(20.0)
        .duration(2.0)
        .warmup(0.0)
        .compute_mean(0.02)
        .mean_update_age(0.5)
        .seed(0x5712_1995)
        .build()
        .expect("valid load config");
    let summary = replay(&handle.addr().to_string(), &load).expect("replay");
    assert_eq!(
        summary.stats.ingested,
        summary.stats.applied
            + summary.stats.superseded
            + summary.stats.shed
            + summary.stats.queued,
        "conservation must hold mid-run under {policy:?}: {:?}",
        summary.stats
    );
    handle.shutdown().expect("clean shutdown")
}

/// Fig. 6's qualitative ordering, live: refreshing on demand keeps
/// transaction reads fresher than deferring updates behind transactions.
#[test]
#[ignore = "multi-second wall-clock soak; run via live-smoke CI or --ignored"]
fn live_tf_vs_od_reproduces_simulator_staleness_ordering() {
    let tf = soak(Policy::TransactionsFirst);
    let od = soak(Policy::OnDemand);
    let tf_frac = tf.txns.stale_read_fraction();
    let od_frac = od.txns.stale_read_fraction();
    // The load is heavy enough that TF must see real UU staleness;
    // otherwise the ordering below would be vacuous.
    assert!(
        tf_frac > 0.02,
        "soak load produced no TF staleness pressure (stale fraction {tf_frac})"
    );
    assert!(
        od_frac <= tf_frac + 0.01,
        "OD must not read staler than TF: od={od_frac} tf={tf_frac}"
    );
    for (label, r) in [("TF", &tf), ("OD", &od)] {
        assert_eq!(
            r.updates.terminal_total(),
            r.updates.arrived,
            "{label}: ingested == applied + shed + discarded must hold at exit"
        );
    }
}

/// Query metadata against a known schedule: an update received while a
/// long transaction holds the CPU is visible as UU staleness, then as a
/// fresh installed generation once the transaction completes, with a
/// monotonically growing age.
#[test]
#[ignore = "multi-second wall-clock soak; run via live-smoke CI or --ignored"]
fn query_metadata_tracks_a_known_update_schedule() {
    let sim = SimConfig::builder()
        .n_low(4)
        .n_high(4)
        .lambda_u(0.0)
        .lambda_t(0.0)
        .duration(60.0)
        .warmup(0.0)
        .staleness(StalenessSpec::UnappliedUpdate)
        .policy(Policy::TransactionsFirst)
        .build()
        .expect("valid config");
    let cfg = LiveConfig::new(sim).expect("valid live config");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = serve(&cfg, listener).expect("serve");
    let tx = handle.ingest();

    let query = |tx: &mpsc::Sender<Ingest>| {
        let (qtx, qrx) = mpsc::sync_channel(1);
        tx.send(Ingest::Query {
            q: WireQuery { class: 0, index: 1 },
            reply: qtx,
        })
        .expect("send query");
        qrx.recv().expect("query answered")
    };

    // A long transaction pins the CPU, then the update arrives: under TF
    // it must wait, leaving object (low, 1) unapplied-update stale.
    tx.send(Ingest::Txn(WireTxn {
        id: 1,
        class: 1,
        value: 1.0,
        slack_micros: 5_000_000,
        compute_micros: 400_000,
        reads: vec![(1, 0)],
    }))
    .expect("send txn");
    tx.send(Ingest::Update(WireUpdate {
        class: 0,
        index: 1,
        generation_micros: 10_000,
        payload: 9.75,
        attr_mask: u64::MAX,
    }))
    .expect("send update");

    // Phase 1: while the transaction burns, the object must read as
    // UU-stale with its pre-update generation.
    let mut saw_stale = false;
    let mut tries = 0;
    loop {
        let r = query(&tx);
        if r.uu_stale == 1 && r.generation_micros < 10_000 {
            saw_stale = true;
            break;
        }
        if r.generation_micros == 10_000 || tries > 2_000 {
            break;
        }
        tries += 1;
        LiveClock::coarse_sleep(0.0002);
    }
    assert!(
        saw_stale,
        "never observed the UU-stale window while the transaction held the CPU"
    );

    // Phase 2: once the transaction finishes, the background install
    // lands and the query shows the new generation, fresh.
    let mut tries = 0;
    let fresh = loop {
        let r = query(&tx);
        if r.generation_micros == 10_000 && r.uu_stale == 0 {
            break r;
        }
        tries += 1;
        assert!(tries <= 5_000, "update never installed: last {r:?}");
        LiveClock::coarse_sleep(0.001);
    };
    assert!((fresh.payload - 9.75).abs() < 1e-12);
    assert!(fresh.age_micros >= 0, "age {} negative", fresh.age_micros);

    // Phase 3: with no further updates the same generation only ages.
    LiveClock::coarse_sleep(0.02);
    let later = query(&tx);
    assert_eq!(later.generation_micros, 10_000);
    assert!(
        later.age_micros > fresh.age_micros,
        "age must grow with wall time: {} !> {}",
        later.age_micros,
        fresh.age_micros
    );

    tx.send(Ingest::Shutdown).expect("send shutdown");
    let report = handle.wait().expect("clean shutdown");
    assert_eq!(report.updates.arrived, 1);
    assert_eq!(report.updates.terminal_total(), report.updates.arrived);
}
