//! Loom model for the lock-free SPSC ingest ring (`strip_live::spsc`).
//!
//! Compiled only under `--cfg loom`, where the ring's atomics resolve to
//! the checked loom stand-ins and every operation becomes a scheduling
//! decision. The models below exhaustively enumerate producer/consumer
//! interleavings around the three edges that matter for a ring buffer:
//! normal streaming (FIFO, no loss, no duplication), the full-ring edge
//! (a push against a full ring hands the value back instead of
//! overwriting), and the empty-ring/close edge (a pop against an empty
//! ring returns `None` and close is observed only after the last value).
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p strip-live --test loom_spsc --release
//! ```
//!
//! The vendored loom stand-in explores sequentially consistent
//! interleavings without a preemption bound, so every loop here is
//! bounded: a stray `while` spinning on another thread's progress would
//! send the DFS down an infinite schedule.
#![cfg(loom)]

use strip_live::spsc::ring;

/// Streaming: a producer pushes a short FIFO sequence while the consumer
/// pops concurrently. Under every interleaving the consumer must observe
/// exactly the pushed sequence, in order, with nothing lost or
/// duplicated — this is the property the executor's drain loop relies on
/// when it trusts `len()` as a pop budget.
#[test]
fn spsc_stream_is_fifo_lossless_under_all_interleavings() {
    loom::model(|| {
        let (mut p, mut c) = ring::<u32>(4);
        let producer = loom::thread::spawn(move || {
            for v in 0..3u32 {
                // Capacity 4 with 3 pushes total: the ring can never be
                // full here, so a handed-back value is itself a bug.
                p.push(v).expect("ring with spare capacity refused a push");
            }
        });
        // Bounded concurrent pops: some attempts may race ahead of the
        // producer and legitimately see an empty ring.
        let mut got = Vec::new();
        for _ in 0..6 {
            if let Some(v) = c.pop() {
                got.push(v);
            }
        }
        producer.join().expect("producer thread");
        // After the join everything published is visible; drain the rest
        // (bounded by ring occupancy, so this loop terminates).
        while let Some(v) = c.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2], "FIFO with no loss or duplication");
        assert!(c.is_closed(), "producer drop must publish the close");
        assert!(c.is_empty());
    });
}

/// Full-ring and wraparound edge: the ring starts at capacity, so the
/// producer's next pushes contend with the consumer for freed slots.
/// Whatever the schedule, a push either lands (and must come back out in
/// order, through wrapped indices) or is refused — never overwrites.
#[test]
fn full_ring_pushes_are_refused_not_overwritten() {
    loom::model(|| {
        let (mut p, mut c) = ring::<u32>(2);
        // Pre-fill to the brim before the threads race.
        p.push(0).expect("empty ring accepts");
        p.push(1).expect("last free slot accepts");
        let producer = loom::thread::spawn(move || {
            // Two bounded attempts: each succeeds only if the consumer
            // freed a slot first. Successful pushes walk the sequence
            // forward so FIFO violations are detectable downstream.
            let mut landed = 0u32;
            for _ in 0..2 {
                if p.push(2 + landed).is_ok() {
                    landed += 1;
                }
            }
            landed
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            if let Some(v) = c.pop() {
                got.push(v);
            }
        }
        let landed = producer.join().expect("producer thread");
        while let Some(v) = c.pop() {
            got.push(v);
        }
        let expected: Vec<u32> = (0..2 + landed).collect();
        assert_eq!(
            got, expected,
            "every landed push must come out exactly once, in order"
        );
    });
}

/// Empty-ring and close edge: pops racing ahead of the only push must
/// return `None` (never block, never yield junk), and after the producer
/// is joined the value and the close are both visible.
#[test]
fn empty_pops_return_none_and_close_is_seen_after_drain() {
    loom::model(|| {
        let (mut p, mut c) = ring::<u32>(2);
        let producer = loom::thread::spawn(move || {
            p.push(7).expect("empty ring accepts");
            // Dropping the producer here closes the ring.
        });
        let mut seen = None;
        for _ in 0..4 {
            if let Some(v) = c.pop() {
                seen = Some(v);
                break;
            }
        }
        producer.join().expect("producer thread");
        if seen.is_none() {
            seen = c.pop();
        }
        assert_eq!(seen, Some(7), "the pushed value must not be lost");
        assert!(c.is_closed(), "close must be visible after the join");
        assert_eq!(c.pop(), None, "a drained closed ring stays empty");
    });
}
