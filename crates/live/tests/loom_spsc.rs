//! Loom model for the lock-free SPSC ingest ring (`strip_live::spsc`).
//!
//! Compiled only under `--cfg loom`, where the ring's atomics resolve to
//! the checked loom stand-ins and every operation becomes a scheduling
//! decision. The models below exhaustively enumerate producer/consumer
//! interleavings around the three edges that matter for a ring buffer:
//! normal streaming (FIFO, no loss, no duplication), the full-ring edge
//! (a push against a full ring hands the value back instead of
//! overwriting), and the empty-ring/close edge (a pop against an empty
//! ring returns `None` and close is observed only after the last value).
//! Two protocol models ride along: the server's credit-grant arithmetic
//! (the real [`CreditWindow`] against real rings — grants may never let
//! a credited push find a full stripe) and the WAL flusher's
//! chunk-then-watermark Release publication.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p strip-live --test loom_spsc --release
//! ```
//!
//! The vendored loom stand-in explores sequentially consistent
//! interleavings without a preemption bound, so every loop here is
//! bounded: a stray `while` spinning on another thread's progress would
//! send the DFS down an infinite schedule.
#![cfg(loom)]

use strip_live::credit::CreditWindow;
use strip_live::spsc::ring;

/// Streaming: a producer pushes a short FIFO sequence while the consumer
/// pops concurrently. Under every interleaving the consumer must observe
/// exactly the pushed sequence, in order, with nothing lost or
/// duplicated — this is the property the executor's drain loop relies on
/// when it trusts `len()` as a pop budget.
#[test]
fn spsc_stream_is_fifo_lossless_under_all_interleavings() {
    loom::model(|| {
        let (mut p, mut c) = ring::<u32>(4);
        let producer = loom::thread::spawn(move || {
            for v in 0..3u32 {
                // Capacity 4 with 3 pushes total: the ring can never be
                // full here, so a handed-back value is itself a bug.
                p.push(v).expect("ring with spare capacity refused a push");
            }
        });
        // Bounded concurrent pops: some attempts may race ahead of the
        // producer and legitimately see an empty ring.
        let mut got = Vec::new();
        for _ in 0..6 {
            if let Some(v) = c.pop() {
                got.push(v);
            }
        }
        producer.join().expect("producer thread");
        // After the join everything published is visible; drain the rest
        // (bounded by ring occupancy, so this loop terminates).
        while let Some(v) = c.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2], "FIFO with no loss or duplication");
        assert!(c.is_closed(), "producer drop must publish the close");
        assert!(c.is_empty());
    });
}

/// Full-ring and wraparound edge: the ring starts at capacity, so the
/// producer's next pushes contend with the consumer for freed slots.
/// Whatever the schedule, a push either lands (and must come back out in
/// order, through wrapped indices) or is refused — never overwrites.
#[test]
fn full_ring_pushes_are_refused_not_overwritten() {
    loom::model(|| {
        let (mut p, mut c) = ring::<u32>(2);
        // Pre-fill to the brim before the threads race.
        p.push(0).expect("empty ring accepts");
        p.push(1).expect("last free slot accepts");
        let producer = loom::thread::spawn(move || {
            // Two bounded attempts: each succeeds only if the consumer
            // freed a slot first. Successful pushes walk the sequence
            // forward so FIFO violations are detectable downstream.
            let mut landed = 0u32;
            for _ in 0..2 {
                if p.push(2 + landed).is_ok() {
                    landed += 1;
                }
            }
            landed
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            if let Some(v) = c.pop() {
                got.push(v);
            }
        }
        let landed = producer.join().expect("producer thread");
        while let Some(v) = c.pop() {
            got.push(v);
        }
        let expected: Vec<u32> = (0..2 + landed).collect();
        assert_eq!(
            got, expected,
            "every landed push must come out exactly once, in order"
        );
    });
}

/// Credit-grant model: the server's credit arithmetic (the *real*
/// [`CreditWindow`] from `strip_live::credit`, driven against real rings)
/// racing a draining executor. The property the wire protocol stands on:
/// a grant is computed from the scarcest stripe's observed free slots
/// minus the client's unspent window, and the executor only ever *frees*
/// slots concurrently — so a credited client spending its whole window
/// into one stripe (the adversarial placement) must never find that ring
/// full. A stale `consumed()` observation under-estimates frees and
/// shrinks the grant; it can never inflate it. The model also carries an
/// uncredited backlog update so the occupancy-vs-grant distinction that
/// `pre_credit` exists for is exercised, and checks FIFO on the loaded
/// stripe end to end.
#[test]
fn credit_grants_never_let_a_credited_push_find_a_full_ring() {
    loom::model(|| {
        const CAP: usize = 2;
        let (mut p0, mut c0) = ring::<u32>(CAP);
        let (p1, _c1) = ring::<u32>(CAP);
        // One uncredited update already occupies stripe 0 before the
        // client opts in: it holds a slot but never drew credit.
        p0.push(100).expect("empty ring accepts the backlog update");
        let mut window = CreditWindow::new();
        window.on_update();
        window.opt_in();
        // The executor drains stripe 0 concurrently with the grant
        // rounds (bounded attempts; a miss is a legal schedule).
        let consumer = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Some(v) = c0.pop() {
                    got.push(v);
                }
            }
            (c0, got)
        });
        // Two grant rounds, each spent entirely into stripe 0 — the
        // scarcest ring, so the bound is tight, not slack.
        let mut next = 0u32;
        for _ in 0..2 {
            let min_free = [&p0, &p1]
                .iter()
                .map(|p| (CAP as u64).saturating_sub(p.pushed().saturating_sub(p.consumed())))
                .min()
                .expect("two stripes");
            let grant = window.grantable(min_free);
            window.record_grant(grant);
            for _ in 0..grant {
                window.on_update();
                p0.push(next)
                    .expect("credited push found a full ring: the grant overran occupancy");
                next += 1;
            }
        }
        let (mut c0, mut got) = consumer.join().expect("consumer thread");
        while let Some(v) = c0.pop() {
            got.push(v);
        }
        let mut expected = vec![100u32];
        expected.extend(0..next);
        assert_eq!(got, expected, "granted pushes stay FIFO behind the backlog");
    });
}

/// WAL chunk-handoff model: the flusher's watermark publication protocol
/// from `strip_live::wal::flusher_loop`, in miniature. The flusher
/// writes a chunk's records and only then Release-stores the durable
/// watermark (`written` in the sync-site registry); an appender
/// Acquire-samples the watermark to decide what is safely on disk. Under
/// every interleaving the sampled watermark must be monotone and every
/// record at or below it must already be fully written — i.e. the
/// Release store really is the *last* step of the handoff, after the
/// record writes in program order.
#[test]
fn wal_watermark_is_monotone_and_never_overtakes_its_chunk() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    use loom::sync::Arc;

    loom::model(|| {
        // Four records flushed as two chunks of two; slot value 0 means
        // "not yet written" (records are seq + 1, never 0).
        let slots = Arc::new([
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ]);
        let written = Arc::new(AtomicU64::new(0)); // highest durable seq, 1-based
        let flusher = {
            let slots = Arc::clone(&slots);
            let written = Arc::clone(&written);
            loom::thread::spawn(move || {
                for chunk in 0..2u64 {
                    for r in 0..2u64 {
                        let seq = chunk * 2 + r;
                        slots[seq as usize].store(seq + 1, Ordering::Relaxed);
                    }
                    // The publication edge: records first, watermark last.
                    written.store(chunk * 2 + 2, Ordering::Release);
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..2 {
            let wm = written.load(Ordering::Acquire);
            assert!(wm >= last, "watermark went backwards: {wm} < {last}");
            last = wm;
            for seq in 0..wm {
                let v = slots[seq as usize].load(Ordering::Relaxed);
                assert_eq!(
                    v,
                    seq + 1,
                    "watermark {wm} published before record {seq} was written"
                );
            }
        }
        flusher.join().expect("flusher thread");
        assert_eq!(written.load(Ordering::Acquire), 4, "all chunks durable");
    });
}

/// Empty-ring and close edge: pops racing ahead of the only push must
/// return `None` (never block, never yield junk), and after the producer
/// is joined the value and the close are both visible.
#[test]
fn empty_pops_return_none_and_close_is_seen_after_drain() {
    loom::model(|| {
        let (mut p, mut c) = ring::<u32>(2);
        let producer = loom::thread::spawn(move || {
            p.push(7).expect("empty ring accepts");
            // Dropping the producer here closes the ring.
        });
        let mut seen = None;
        for _ in 0..4 {
            if let Some(v) = c.pop() {
                seen = Some(v);
                break;
            }
        }
        producer.join().expect("producer thread");
        if seen.is_none() {
            seen = c.pop();
        }
        assert_eq!(seen, Some(7), "the pushed value must not be lost");
        assert!(c.is_closed(), "close must be visible after the join");
        assert_eq!(c.pop(), None, "a drained closed ring stays empty");
    });
}
