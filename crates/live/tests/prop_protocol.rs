//! Property tests: every wire message survives an encode → decode
//! round-trip unchanged, including the zero-length and maximum-size
//! edges of the variable-length frames.

use proptest::prelude::*;
use strip_live::protocol::{
    read_msg, write_msg, Msg, WireDerivedQuery, WireDerivedQueryResponse, WireQuery,
    WireQueryResponse, WireStats, WireTxn, WireUpdate, MAX_BATCH_UPDATES, MAX_TXN_READS,
};

/// Encodes `msg` into a buffer and decodes it back out.
fn round_trip(msg: &Msg) -> Msg {
    let mut buf = Vec::new();
    write_msg(&mut buf, msg).expect("encode into Vec");
    let mut cursor = &buf[..];
    let decoded = read_msg(&mut cursor)
        .expect("decode")
        .expect("one full frame present");
    assert!(cursor.is_empty(), "frame left trailing bytes");
    decoded
}

fn update_strategy() -> impl Strategy<Value = WireUpdate> {
    (
        0u8..2,
        0u32..u32::MAX,
        i64::MIN..i64::MAX,
        -1e12f64..1e12,
        0u64..u64::MAX,
    )
        .prop_map(
            |(class, index, generation_micros, payload, attr_mask)| WireUpdate {
                class,
                index,
                generation_micros,
                payload,
                attr_mask,
            },
        )
}

fn txn_strategy() -> impl Strategy<Value = WireTxn> {
    (
        (0u64..u64::MAX, 0u8..2, -1e9f64..1e9),
        (0u64..u64::MAX, 0u64..u64::MAX),
        prop::collection::vec((0u8..2, 0u32..u32::MAX), 0..40),
    )
        .prop_map(
            |((id, class, value), (slack_micros, compute_micros), reads)| WireTxn {
                id,
                class,
                value,
                slack_micros,
                compute_micros,
                reads,
            },
        )
}

fn stats_strategy() -> impl Strategy<Value = WireStats> {
    (
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        ),
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        ),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1e9),
    )
        .prop_map(
            |(
                (ingested, applied, superseded, shed, queued),
                (txns_arrived, txns_committed, txns_missed, os_depth, uq_depth),
                (fold_low, fold_high, p_md, av),
            )| WireStats {
                ingested,
                applied,
                superseded,
                shed,
                queued,
                txns_arrived,
                txns_committed,
                txns_missed,
                os_depth,
                uq_depth,
                fold_low,
                fold_high,
                p_md,
                av,
            },
        )
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![
        3 => update_strategy().prop_map(Msg::Update),
        3 => txn_strategy().prop_map(Msg::Txn),
        3 => prop::collection::vec(update_strategy(), 0..60).prop_map(Msg::UpdateBatch),
        1 => Just(Msg::CreditRequest),
        1 => (0u64..u64::MAX).prop_map(Msg::Credit),
        2 => (0u8..2, 0u32..u32::MAX).prop_map(|(class, index)| Msg::Query(WireQuery { class, index })),
        1 => Just(Msg::StatsRequest),
        1 => Just(Msg::ReportRequest),
        1 => Just(Msg::Shutdown),
        2 => (-1e12f64..1e12, i64::MIN..i64::MAX, i64::MIN..i64::MAX, 0u8..2).prop_map(
            |(payload, generation_micros, age_micros, uu_stale)| {
                Msg::QueryResponse(WireQueryResponse {
                    payload,
                    generation_micros,
                    age_micros,
                    uu_stale,
                })
            }
        ),
        2 => stats_strategy().prop_map(Msg::StatsResponse),
        1 => prop::collection::vec(32u8..127, 0..200).prop_map(|bytes| {
            Msg::ReportJson(String::from_utf8(bytes).expect("printable ascii"))
        }),
        2 => (0u32..u32::MAX).prop_map(|node| Msg::DerivedQuery(WireDerivedQuery { node })),
        2 => (-1e12f64..1e12, 0u8..3, 0u8..2).prop_map(|(value, stale, refreshed)| {
            Msg::DerivedQueryResponse(WireDerivedQueryResponse {
                value,
                stale,
                refreshed,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_message_round_trips(msg in msg_strategy()) {
        prop_assert_eq!(round_trip(&msg), msg);
    }

    #[test]
    fn update_batches_round_trip_at_any_length(
        updates in prop::collection::vec(update_strategy(), 0..200),
    ) {
        let msg = Msg::UpdateBatch(updates);
        prop_assert_eq!(round_trip(&msg), msg);
    }

    #[test]
    fn txn_read_sets_round_trip_at_any_length(
        n in 0usize..200,
        seed in 0u64..u64::MAX,
    ) {
        let reads: Vec<(u8, u32)> = (0..n)
            .map(|i| ((i % 2) as u8, (seed as u32).wrapping_add(i as u32)))
            .collect();
        let msg = Msg::Txn(WireTxn {
            id: seed,
            class: (seed % 2) as u8,
            value: 1.0,
            slack_micros: seed >> 1,
            compute_micros: seed >> 2,
            reads,
        });
        prop_assert_eq!(round_trip(&msg), msg);
    }
}

/// Zero-length edges: an empty read set, an empty report string, and an
/// empty update batch.
#[test]
fn zero_length_payloads_round_trip() {
    let txn = Msg::Txn(WireTxn {
        id: 0,
        class: 0,
        value: 0.0,
        slack_micros: 0,
        compute_micros: 0,
        reads: Vec::new(),
    });
    assert_eq!(round_trip(&txn), txn);
    let report = Msg::ReportJson(String::new());
    assert_eq!(round_trip(&report), report);
    let batch = Msg::UpdateBatch(Vec::new());
    assert_eq!(round_trip(&batch), batch);
}

/// A single-update batch round-trips and carries the same payload bytes
/// as the equivalent singleton `Update` frame (only tag and count
/// differ) — the batch format is the update format, amortised.
#[test]
fn single_update_batch_round_trips() {
    let u = WireUpdate {
        class: 1,
        index: 123,
        generation_micros: -42,
        payload: 6.5,
        attr_mask: u64::MAX,
    };
    let batch = Msg::UpdateBatch(vec![u]);
    assert_eq!(round_trip(&batch), batch);
    let batch_body = batch.encode_body();
    let update_body = Msg::Update(u).encode_body();
    assert_eq!(&batch_body[5..], &update_body[1..]);
}

/// Maximum-size edge: the largest batch that fits in `MAX_FRAME`
/// round-trips; one more update must be rejected by the encoder rather
/// than producing an undecodable frame.
#[test]
fn max_size_batch_round_trips_and_overflow_is_rejected() {
    let full: Vec<WireUpdate> = (0..MAX_BATCH_UPDATES)
        .map(|i| WireUpdate {
            class: (i % 2) as u8,
            index: i as u32,
            generation_micros: i as i64,
            payload: i as f64,
            attr_mask: u64::MAX,
        })
        .collect();
    let msg = Msg::UpdateBatch(full.clone());
    assert_eq!(round_trip(&msg), msg);

    let mut over = full;
    over.push(WireUpdate {
        class: 0,
        index: 0,
        generation_micros: 0,
        payload: 0.0,
        attr_mask: 0,
    });
    let mut buf = Vec::new();
    assert!(
        write_msg(&mut buf, &Msg::UpdateBatch(over.clone())).is_err(),
        "oversized batch must be refused at encode time"
    );
    let mut reused = Vec::new();
    assert!(
        strip_live::protocol::encode_batch_body(&mut reused, &over).is_err(),
        "the reusable-buffer encoder must refuse it too"
    );
}

/// Maximum-size edge: a transaction frame carrying the largest read set
/// that fits in `MAX_FRAME` round-trips; one more read is rejected by
/// the encoder rather than producing an undecodable frame.
#[test]
fn max_size_txn_frame_round_trips_and_overflow_is_rejected() {
    let reads: Vec<(u8, u32)> = (0..MAX_TXN_READS)
        .map(|i| ((i % 2) as u8, i as u32))
        .collect();
    let msg = Msg::Txn(WireTxn {
        id: u64::MAX,
        class: 1,
        value: -1.5,
        slack_micros: u64::MAX,
        compute_micros: u64::MAX,
        reads,
    });
    assert_eq!(round_trip(&msg), msg);

    let too_many: Vec<(u8, u32)> = (0..=MAX_TXN_READS)
        .map(|i| ((i % 2) as u8, i as u32))
        .collect();
    let over = Msg::Txn(WireTxn {
        id: 1,
        class: 0,
        value: 0.0,
        slack_micros: 0,
        compute_micros: 0,
        reads: too_many,
    });
    let mut buf = Vec::new();
    assert!(
        write_msg(&mut buf, &over).is_err(),
        "oversized frame must be refused at encode time"
    );
}
