//! Property tests for the WAL wire formats: records, segment headers, and
//! whole-segment scans must round-trip exactly, reject every single-byte
//! corruption, and recover the longest valid prefix from a torn tail at
//! any byte offset — the invariants crash recovery stands on.

use proptest::prelude::*;
use strip_core::config::SimConfig;
use strip_core::config_fingerprint;
use strip_live::protocol::WireUpdate;
use strip_live::wal::{
    rotated_segment_name, scan_segment, DurabilityConfig, SegmentHeader, WalError, WalRecord,
    HDR_LEN, REC_LEN, REC_SEAL, SEGMENT_FILE,
};
use strip_live::{recover, LiveConfig};

fn update_strategy() -> impl Strategy<Value = WireUpdate> {
    (
        0u8..2,
        0u32..u32::MAX,
        i64::MIN..i64::MAX,
        -1e12f64..1e12,
        0u64..u64::MAX,
    )
        .prop_map(
            |(class, index, generation_micros, payload, attr_mask)| WireUpdate {
                class,
                index,
                generation_micros,
                payload,
                attr_mask,
            },
        )
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        7 => (0u64..u64::MAX, update_strategy(), i64::MIN..i64::MAX)
            .prop_map(|(seq, u, arrival)| WalRecord::update(seq, u, arrival)),
        1 => (0u64..u64::MAX).prop_map(WalRecord::seal),
    ]
}

/// A header plus `records` encoded back-to-back, as the flusher writes them.
fn encode_segment(fingerprint: u64, base_seq: u64, records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = SegmentHeader {
        fingerprint,
        base_seq,
    }
    .encode()
    .to_vec();
    for rec in records {
        bytes.extend_from_slice(&rec.encode());
    }
    bytes
}

proptest! {
    #[test]
    fn record_round_trips(rec in record_strategy()) {
        let decoded = WalRecord::decode(&rec.encode()).expect("valid record");
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn record_rejects_single_byte_corruption(
        rec in record_strategy(),
        pos in 0usize..REC_LEN,
        bit in 0u32..8,
    ) {
        let mut bytes = rec.encode();
        bytes[pos] ^= 1 << bit;
        let err = WalRecord::decode(&bytes).expect_err("corruption undetected");
        prop_assert!(matches!(err, WalError::BadCrc | WalError::BadKind(_)));
    }

    #[test]
    fn header_round_trips(fingerprint in 0u64..u64::MAX, base_seq in 0u64..u64::MAX) {
        let hdr = SegmentHeader { fingerprint, base_seq };
        let decoded = SegmentHeader::decode(&hdr.encode()).expect("valid header");
        prop_assert_eq!(decoded, hdr);
    }

    #[test]
    fn header_rejects_single_byte_corruption(
        fingerprint in 0u64..u64::MAX,
        base_seq in 0u64..u64::MAX,
        pos in 0usize..HDR_LEN,
        bit in 0u32..8,
    ) {
        let mut bytes = SegmentHeader { fingerprint, base_seq }.encode();
        bytes[pos] ^= 1 << bit;
        prop_assert!(SegmentHeader::decode(&bytes).is_err());
    }

    #[test]
    fn torn_tail_recovers_longest_valid_prefix(
        records in prop::collection::vec(record_strategy(), 0..12),
        fingerprint in 0u64..u64::MAX,
        cut_back in 0usize..REC_LEN * 12,
    ) {
        // Drop seals mid-stream: a seal legitimately ends the scan early,
        // which is the one case where "longest prefix" is not the whole
        // vector. Sealing is covered separately below.
        let records: Vec<WalRecord> =
            records.into_iter().filter(|r| r.kind != REC_SEAL).collect();
        let full = encode_segment(fingerprint, 0, &records);
        // Tear anywhere from "just the header" to the full length.
        let cut = full.len().saturating_sub(cut_back).max(HDR_LEN);
        let scan = scan_segment(&full[..cut], fingerprint).expect("header intact");
        let whole = (cut - HDR_LEN) / REC_LEN;
        prop_assert_eq!(scan.records.len(), whole);
        prop_assert_eq!(&scan.records[..], &records[..whole]);
        prop_assert_eq!(
            scan.discarded,
            u64::from(!(cut - HDR_LEN).is_multiple_of(REC_LEN))
        );
        prop_assert!(!scan.sealed);
    }

    #[test]
    fn sealed_segment_scans_clean_with_zero_discard(
        records in prop::collection::vec(record_strategy(), 0..12),
        fingerprint in 0u64..u64::MAX,
        garbage in prop::collection::vec(0u8..u8::MAX, 0..70),
    ) {
        let records: Vec<WalRecord> =
            records.into_iter().filter(|r| r.kind != REC_SEAL).collect();
        let mut bytes = encode_segment(fingerprint, 0, &records);
        bytes.extend_from_slice(&WalRecord::seal(records.len() as u64).encode());
        // Anything after the seal is stale pre-truncation leftover.
        bytes.extend_from_slice(&garbage);
        let scan = scan_segment(&bytes, fingerprint).expect("header intact");
        prop_assert!(scan.sealed);
        prop_assert_eq!(scan.discarded, 0);
        prop_assert_eq!(scan.records.len(), records.len() + 1);
        prop_assert_eq!(scan.records[records.len()].seq, records.len() as u64);
    }

    #[test]
    fn scan_rejects_wrong_fingerprint(
        records in prop::collection::vec(record_strategy(), 0..4),
        fingerprint in 0u64..u64::MAX - 1,
    ) {
        let bytes = encode_segment(fingerprint, 0, &records);
        prop_assert!(matches!(
            scan_segment(&bytes, fingerprint + 1),
            Err(WalError::FingerprintMismatch { .. })
        ));
    }
}

/// A live config over a tiny store, durable into `dir`, for driving
/// `recover()` against hand-written segment chains.
fn chain_config(dir: &std::path::Path) -> LiveConfig {
    let sim = SimConfig::builder()
        .n_low(8)
        .n_high(8)
        .lambda_u(0.0)
        .lambda_t(0.0)
        .build()
        .expect("valid config");
    let mut cfg = LiveConfig::with_quantum(sim, 500e-6).expect("valid live config");
    cfg.durability = Some(DurabilityConfig::new(dir));
    cfg
}

/// An update record that recovery will accept (class and index inside the
/// `chain_config` store shape), with sequence numbers assigned in order.
fn chain_update(seq: u64) -> WalRecord {
    WalRecord::update(
        seq,
        WireUpdate {
            class: (seq % 2) as u8,
            index: (seq % 8) as u32,
            generation_micros: (seq as i64) * 1_000,
            payload: seq as f64,
            attr_mask: u64::MAX,
        },
        (seq as i64) * 1_000 + 7,
    )
}

fn fresh_chain_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "strip-wal-chain-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

proptest! {
    // The full rotation contract, end to end through `recover()`: a chain
    // of sealed links followed by an active segment torn at an arbitrary
    // byte (including exactly at a record boundary) must replay every
    // record in every sealed link plus the longest valid prefix of the
    // tail, discard at most the one torn record, and leave `next_seq`
    // pointing one past the last replayed update.
    #[test]
    fn recovery_replays_rotated_chain_and_tolerates_torn_tail(
        per_link in prop::collection::vec(1usize..6, 0..4),
        tail in 0usize..8,
        cut_back in 0usize..REC_LEN * 2,
    ) {
        let dir = fresh_chain_dir("replay");
        let cfg = chain_config(&dir);
        let fingerprint = config_fingerprint(&cfg.sim);

        let mut seq = 0u64;
        for (idx, n) in per_link.iter().enumerate() {
            let mut records: Vec<WalRecord> = (0..*n)
                .map(|_| {
                    let r = chain_update(seq);
                    seq += 1;
                    r
                })
                .collect();
            let base = records[0].seq;
            records.push(WalRecord::seal(seq));
            std::fs::write(
                dir.join(rotated_segment_name(idx as u64)),
                encode_segment(fingerprint, base, &records),
            )
            .expect("write link");
        }
        let chain_records = seq;
        let active: Vec<WalRecord> = (0..tail)
            .map(|_| {
                let r = chain_update(seq);
                seq += 1;
                r
            })
            .collect();
        let mut bytes = encode_segment(fingerprint, chain_records, &active);
        let cut = bytes.len().saturating_sub(cut_back).max(HDR_LEN);
        bytes.truncate(cut);
        std::fs::write(dir.join(SEGMENT_FILE), &bytes).expect("write active");

        let rec = recover(&cfg).expect("chain recovers");
        let whole_tail = ((cut - HDR_LEN) / REC_LEN) as u64;
        prop_assert_eq!(rec.replayed, chain_records + whole_tail);
        prop_assert_eq!(
            rec.discarded,
            u64::from(!(cut - HDR_LEN).is_multiple_of(REC_LEN))
        );
        prop_assert_eq!(rec.next_seq, rec.replayed);
        prop_assert!(!rec.snapshot_loaded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_rejects_torn_or_unsealed_interior_link() {
    // Rotation seals and fsyncs a link before the next one exists, so an
    // interior link that is torn (or missing its seal) means acknowledged
    // records are gone; recovery must refuse rather than skip silently.
    for unsealed in [false, true] {
        let dir = fresh_chain_dir("torn");
        let cfg = chain_config(&dir);
        let fingerprint = config_fingerprint(&cfg.sim);
        let mut records: Vec<WalRecord> = (0..3).map(chain_update).collect();
        if !unsealed {
            records.push(WalRecord::seal(3));
        }
        let mut link = encode_segment(fingerprint, 0, &records);
        if !unsealed {
            let torn = link.len() - REC_LEN / 2; // tear the seal itself
            link.truncate(torn);
        }
        std::fs::write(dir.join(rotated_segment_name(0)), link).expect("write link");
        std::fs::write(
            dir.join(SEGMENT_FILE),
            encode_segment(fingerprint, 3, &[WalRecord::seal(3)]),
        )
        .expect("write active");
        let err = recover(&cfg).expect_err("interior damage must abort");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
