//! Property tests for the WAL wire formats: records, segment headers, and
//! whole-segment scans must round-trip exactly, reject every single-byte
//! corruption, and recover the longest valid prefix from a torn tail at
//! any byte offset — the invariants crash recovery stands on.

use proptest::prelude::*;
use strip_live::protocol::WireUpdate;
use strip_live::wal::{
    scan_segment, SegmentHeader, WalError, WalRecord, HDR_LEN, REC_LEN, REC_SEAL,
};

fn update_strategy() -> impl Strategy<Value = WireUpdate> {
    (
        0u8..2,
        0u32..u32::MAX,
        i64::MIN..i64::MAX,
        -1e12f64..1e12,
        0u64..u64::MAX,
    )
        .prop_map(
            |(class, index, generation_micros, payload, attr_mask)| WireUpdate {
                class,
                index,
                generation_micros,
                payload,
                attr_mask,
            },
        )
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        7 => (0u64..u64::MAX, update_strategy(), i64::MIN..i64::MAX)
            .prop_map(|(seq, u, arrival)| WalRecord::update(seq, u, arrival)),
        1 => (0u64..u64::MAX).prop_map(WalRecord::seal),
    ]
}

/// A header plus `records` encoded back-to-back, as the flusher writes them.
fn encode_segment(fingerprint: u64, base_seq: u64, records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = SegmentHeader {
        fingerprint,
        base_seq,
    }
    .encode()
    .to_vec();
    for rec in records {
        bytes.extend_from_slice(&rec.encode());
    }
    bytes
}

proptest! {
    #[test]
    fn record_round_trips(rec in record_strategy()) {
        let decoded = WalRecord::decode(&rec.encode()).expect("valid record");
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn record_rejects_single_byte_corruption(
        rec in record_strategy(),
        pos in 0usize..REC_LEN,
        bit in 0u32..8,
    ) {
        let mut bytes = rec.encode();
        bytes[pos] ^= 1 << bit;
        let err = WalRecord::decode(&bytes).expect_err("corruption undetected");
        prop_assert!(matches!(err, WalError::BadCrc | WalError::BadKind(_)));
    }

    #[test]
    fn header_round_trips(fingerprint in 0u64..u64::MAX, base_seq in 0u64..u64::MAX) {
        let hdr = SegmentHeader { fingerprint, base_seq };
        let decoded = SegmentHeader::decode(&hdr.encode()).expect("valid header");
        prop_assert_eq!(decoded, hdr);
    }

    #[test]
    fn header_rejects_single_byte_corruption(
        fingerprint in 0u64..u64::MAX,
        base_seq in 0u64..u64::MAX,
        pos in 0usize..HDR_LEN,
        bit in 0u32..8,
    ) {
        let mut bytes = SegmentHeader { fingerprint, base_seq }.encode();
        bytes[pos] ^= 1 << bit;
        prop_assert!(SegmentHeader::decode(&bytes).is_err());
    }

    #[test]
    fn torn_tail_recovers_longest_valid_prefix(
        records in prop::collection::vec(record_strategy(), 0..12),
        fingerprint in 0u64..u64::MAX,
        cut_back in 0usize..REC_LEN * 12,
    ) {
        // Drop seals mid-stream: a seal legitimately ends the scan early,
        // which is the one case where "longest prefix" is not the whole
        // vector. Sealing is covered separately below.
        let records: Vec<WalRecord> =
            records.into_iter().filter(|r| r.kind != REC_SEAL).collect();
        let full = encode_segment(fingerprint, 0, &records);
        // Tear anywhere from "just the header" to the full length.
        let cut = full.len().saturating_sub(cut_back).max(HDR_LEN);
        let scan = scan_segment(&full[..cut], fingerprint).expect("header intact");
        let whole = (cut - HDR_LEN) / REC_LEN;
        prop_assert_eq!(scan.records.len(), whole);
        prop_assert_eq!(&scan.records[..], &records[..whole]);
        prop_assert_eq!(
            scan.discarded,
            u64::from(!(cut - HDR_LEN).is_multiple_of(REC_LEN))
        );
        prop_assert!(!scan.sealed);
    }

    #[test]
    fn sealed_segment_scans_clean_with_zero_discard(
        records in prop::collection::vec(record_strategy(), 0..12),
        fingerprint in 0u64..u64::MAX,
        garbage in prop::collection::vec(0u8..u8::MAX, 0..70),
    ) {
        let records: Vec<WalRecord> =
            records.into_iter().filter(|r| r.kind != REC_SEAL).collect();
        let mut bytes = encode_segment(fingerprint, 0, &records);
        bytes.extend_from_slice(&WalRecord::seal(records.len() as u64).encode());
        // Anything after the seal is stale pre-truncation leftover.
        bytes.extend_from_slice(&garbage);
        let scan = scan_segment(&bytes, fingerprint).expect("header intact");
        prop_assert!(scan.sealed);
        prop_assert_eq!(scan.discarded, 0);
        prop_assert_eq!(scan.records.len(), records.len() + 1);
        prop_assert_eq!(scan.records[records.len()].seq, records.len() as u64);
    }

    #[test]
    fn scan_rejects_wrong_fingerprint(
        records in prop::collection::vec(record_strategy(), 0..4),
        fingerprint in 0u64..u64::MAX - 1,
    ) {
        let bytes = encode_segment(fingerprint, 0, &records);
        prop_assert!(matches!(
            scan_segment(&bytes, fingerprint + 1),
            Err(WalError::FingerprintMismatch { .. })
        ));
    }
}
