//! Offline stand-in for [loom](https://docs.rs/loom), the permutation
//! model checker. The build environment has no registry access, so — like
//! the `serde`/`proptest` stand-ins — this crate provides exactly the API
//! subset the workspace uses, backed by a real (if small) implementation:
//!
//! * [`model`] runs a closure under a cooperative scheduler that owns
//!   every inter-thread interleaving decision, then **exhaustively
//!   enumerates** those decisions depth-first, re-running the closure once
//!   per distinct schedule until the space is exhausted;
//! * [`thread::spawn`] creates checked threads whose execution is
//!   sequentialized by the scheduler (exactly one runs at a time);
//! * [`sync::atomic`] wraps the std atomics so that every operation is a
//!   preemption point (a scheduling decision happens *before* each
//!   atomic access).
//!
//! A panic (e.g. a failed `assert!`) anywhere in any schedule fails the
//! model with the offending schedule printed, so the failure reproduces.
//!
//! **Scope** (documented honestly): the checker explores interleavings
//! under *sequential consistency* only — it does not model weak-memory
//! reorderings, so `Ordering` arguments are accepted but not
//! distinguished. For the workspace's replicated-sweep protocol (whose
//! atomics are `SeqCst`/`Relaxed` counters with no release/acquire
//! publication edges) SC interleavings are exactly the failure modes worth
//! checking: lost claims, double claims, and missed joins. Schedules are
//! capped at `LOOM_MAX_ITERATIONS` (default 50 000); hitting the cap fails
//! the run rather than passing vacuously.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel payload used to unwind threads when a run is torn down early
/// (deadlock or cross-thread panic); never reported as a model failure.
struct AbortToken;

const NO_THREAD: usize = usize::MAX;

#[derive(Default)]
struct SchedState {
    /// Thread currently allowed to run (`NO_THREAD` when the run ended).
    current: usize,
    /// Per-thread: has its closure finished (or been aborted)?
    finished: Vec<bool>,
    /// Per-thread: the thread id it is blocked joining on, if any.
    blocked_on: Vec<Option<usize>>,
    /// Interleaving choices replayed (prefix) and extended (suffix) this run.
    schedule: Vec<usize>,
    /// Number of runnable options observed at each decision this run.
    counts: Vec<usize>,
    /// Next decision index.
    depth: usize,
    /// First panic message observed this run.
    panic: Option<String>,
    /// Tear the run down: every waiting thread unwinds with [`AbortToken`].
    abort: bool,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// OS-level handles of every checked thread spawned this run.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn context() -> (Arc<Scheduler>, usize) {
    CONTEXT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

impl Scheduler {
    fn new() -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    /// Threads runnable right now: not finished and not blocked.
    fn runnable(state: &SchedState) -> Vec<usize> {
        (0..state.finished.len())
            .filter(|&t| !state.finished[t] && state.blocked_on[t].is_none())
            .collect()
    }

    /// One scheduling decision: picks the next thread to run from the
    /// runnable set, replaying the schedule prefix and extending it with
    /// first-choice (index 0) beyond it. Returns the chosen thread, or
    /// `None` when the run is over (or deadlocked, which aborts).
    fn decide(&self, state: &mut SchedState) -> Option<usize> {
        let options = Self::runnable(state);
        if options.is_empty() {
            if state.finished.iter().all(|&f| f) {
                state.current = NO_THREAD;
            } else {
                state.panic.get_or_insert_with(|| {
                    "deadlock: every unfinished thread is blocked on join".to_string()
                });
                state.abort = true;
                state.current = NO_THREAD;
            }
            self.cv.notify_all();
            return None;
        }
        let choice = if state.depth < state.schedule.len() {
            state.schedule[state.depth]
        } else {
            state.schedule.push(0);
            0
        };
        if state.counts.len() <= state.depth {
            state.counts.resize(state.depth + 1, 0);
        }
        state.counts[state.depth] = options.len();
        state.depth += 1;
        // A stale choice can only mean the closure is nondeterministic
        // outside the scheduler's control; clamp rather than crash.
        let chosen = options[choice.min(options.len() - 1)];
        state.current = chosen;
        self.cv.notify_all();
        Some(chosen)
    }

    /// Blocks the calling OS thread until the scheduler hands `me` the
    /// token (or the run aborts, which unwinds with [`AbortToken`]).
    fn wait_for_turn(&self, me: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.current != me {
            if state.abort {
                drop(state);
                std::panic::panic_any(AbortToken);
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Preemption point before every atomic operation: the scheduler may
    /// hand the token to any runnable thread (including `me`).
    fn preempt(&self, me: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.abort {
            drop(state);
            std::panic::panic_any(AbortToken);
        }
        match self.decide(&mut state) {
            Some(next) if next == me => {}
            _ => {
                drop(state);
                self.wait_for_turn(me);
            }
        }
    }

    /// Registers a new checked thread; it starts runnable but does not
    /// execute until the scheduler picks it.
    fn register(&self) -> usize {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.finished.push(false);
        state.blocked_on.push(None);
        state.finished.len() - 1
    }

    /// Marks `me` finished, unblocks its joiners, and hands the token on.
    fn finish(&self, me: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.finished[me] = true;
        for b in &mut state.blocked_on {
            if *b == Some(me) {
                *b = None;
            }
        }
        if state.abort {
            self.cv.notify_all();
            return;
        }
        self.decide(&mut state);
    }

    /// Blocks `me` until `target` finishes (scheduling others meanwhile).
    fn join_on(&self, target: usize, me: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.abort {
            drop(state);
            std::panic::panic_any(AbortToken);
        }
        if state.finished[target] {
            return;
        }
        state.blocked_on[me] = Some(target);
        match self.decide(&mut state) {
            Some(next) if next == me => unreachable!("blocked thread cannot be chosen"),
            _ => {
                drop(state);
                self.wait_for_turn(me);
            }
        }
    }

    fn record_panic(&self, msg: String) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.panic.get_or_insert(msg);
        // First panic tears the whole run down: remaining threads unwind.
        state.abort = true;
        self.cv.notify_all();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Checked-threading API mirroring `loom::thread`.
pub mod thread {
    use super::{catch_unwind, context, panic_message, AbortToken, Arc, AssertUnwindSafe, CONTEXT};

    /// Handle to a checked thread, mirroring `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        id: usize,
        rx: std::sync::mpsc::Receiver<std::thread::Result<T>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result, like
        /// `std::thread::JoinHandle::join`.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            let (sched, me) = context();
            sched.join_on(self.id, me);
            match self.rx.try_recv() {
                Ok(result) => result,
                // The thread was aborted mid-run; unwind this one too.
                Err(_) => std::panic::panic_any(AbortToken),
            }
        }
    }

    /// Spawns a checked thread; its execution interleaves with every other
    /// checked thread only at atomic operations and yields.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, _me) = context();
        let id = sched.register();
        let (tx, rx) = std::sync::mpsc::channel();
        let sched2 = Arc::clone(&sched);
        let os = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched2), id)));
                sched2.wait_for_turn(id);
                let result = catch_unwind(AssertUnwindSafe(f));
                if let Err(payload) = &result {
                    if payload.is::<AbortToken>() {
                        sched2.finish(id);
                        return;
                    }
                    sched2.record_panic(panic_message(payload.as_ref()));
                }
                let _ = tx.send(result);
                sched2.finish(id);
            })
            .expect("spawn loom thread");
        sched
            .os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(os);
        JoinHandle { id, rx }
    }

    /// A pure preemption point (mirrors `loom::thread::yield_now`).
    pub fn yield_now() {
        let (sched, me) = context();
        sched.preempt(me);
    }
}

/// Checked synchronization primitives mirroring `loom::sync`.
pub mod sync {
    /// Checked atomics: every operation is a preemption point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::super::context;

        macro_rules! checked_atomic {
            ($name:ident, $inner:ty, $prim:ty) => {
                /// Checked atomic: each operation lets the scheduler
                /// preempt first, so every interleaving around it is
                /// explored. Orderings are accepted but the model explores
                /// sequentially consistent interleavings only.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $inner,
                }

                impl $name {
                    /// Creates a new checked atomic.
                    #[must_use]
                    pub fn new(v: $prim) -> Self {
                        Self {
                            inner: <$inner>::new(v),
                        }
                    }

                    /// Checked `load`.
                    pub fn load(&self, order: Ordering) -> $prim {
                        let (sched, me) = context();
                        sched.preempt(me);
                        self.inner.load(order)
                    }

                    /// Checked `store`.
                    pub fn store(&self, v: $prim, order: Ordering) {
                        let (sched, me) = context();
                        sched.preempt(me);
                        self.inner.store(v, order);
                    }

                    /// Checked `swap`.
                    pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                        let (sched, me) = context();
                        sched.preempt(me);
                        self.inner.swap(v, order)
                    }

                    /// Checked `compare_exchange`.
                    ///
                    /// # Errors
                    ///
                    /// Returns the actual value when it differs from
                    /// `currentv`.
                    pub fn compare_exchange(
                        &self,
                        currentv: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        let (sched, me) = context();
                        sched.preempt(me);
                        self.inner.compare_exchange(currentv, new, success, failure)
                    }
                }
            };
        }

        checked_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        checked_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        checked_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        impl AtomicUsize {
            /// Checked `fetch_add`.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                let (sched, me) = context();
                sched.preempt(me);
                self.inner.fetch_add(v, order)
            }
        }

        impl AtomicU64 {
            /// Checked `fetch_add`.
            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                let (sched, me) = context();
                sched.preempt(me);
                self.inner.fetch_add(v, order)
            }
        }
    }

    pub use std::sync::Arc;
}

/// Maximum number of schedules explored before the model fails loudly
/// (overridable via the `LOOM_MAX_ITERATIONS` environment variable).
fn max_iterations() -> usize {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

/// Runs `f` once per distinct interleaving of its checked threads,
/// depth-first, until the schedule space is exhausted.
///
/// # Panics
///
/// Panics when any schedule panics (printing that schedule), when the
/// model deadlocks, or when the space exceeds the iteration cap.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut schedule: Vec<usize> = Vec::new();
    let cap = max_iterations();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= cap,
            "loom: schedule space not exhausted after {cap} iterations \
             (raise LOOM_MAX_ITERATIONS or shrink the model)"
        );
        let (next_schedule, counts, failure) = run_once(Arc::clone(&f), schedule);
        if let Some(msg) = failure {
            panic!(
                "loom: model failed after {iterations} iteration(s)\n\
                 failing schedule: {next_schedule:?}\n{msg}"
            );
        }
        // Odometer step: advance the deepest decision with room left.
        schedule = next_schedule;
        let Some(last) = (0..schedule.len())
            .rev()
            .find(|&i| schedule[i] + 1 < counts[i])
        else {
            break;
        };
        schedule[last] += 1;
        schedule.truncate(last + 1);
    }
}

/// Executes one schedule. Returns the (possibly extended) schedule, the
/// per-decision option counts, and a failure message if the run panicked
/// or deadlocked.
fn run_once<F>(f: Arc<F>, schedule: Vec<usize>) -> (Vec<usize>, Vec<usize>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Scheduler::new();
    {
        let mut state = sched.state.lock().unwrap_or_else(|e| e.into_inner());
        state.schedule = schedule;
        state.current = 0;
    }
    let root = sched.register();
    debug_assert_eq!(root, 0);
    let sched2 = Arc::clone(&sched);
    let os = std::thread::Builder::new()
        .name("loom-0".to_string())
        .spawn(move || {
            CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched2), root)));
            let result = catch_unwind(AssertUnwindSafe(|| f()));
            if let Err(payload) = &result {
                if !payload.is::<AbortToken>() {
                    sched2.record_panic(panic_message(payload.as_ref()));
                }
            }
            sched2.finish(root);
        })
        .expect("spawn loom root thread");

    // Join every checked OS thread; spawn can add handles while we drain.
    let mut pending: VecDeque<std::thread::JoinHandle<()>> = VecDeque::new();
    pending.push_back(os);
    loop {
        while let Some(h) = pending.pop_front() {
            let _ = h.join();
        }
        let mut more = sched.os_handles.lock().unwrap_or_else(|e| e.into_inner());
        if more.is_empty() {
            break;
        }
        pending.extend(more.drain(..));
    }

    let mut state = sched.state.lock().unwrap_or_else(|e| e.into_inner());
    let schedule = std::mem::take(&mut state.schedule);
    let counts = std::mem::take(&mut state.counts);
    let failure = state.panic.take();
    drop(state);
    (schedule, counts, failure)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn explores_more_than_one_schedule() {
        // Two threads each incrementing once: every interleaving must end
        // at 2 (fetch_add is atomic), and more than one schedule exists.
        static RUNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let h = super::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            h.join().expect("child joins");
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
        assert!(
            RUNS.load(std::sync::atomic::Ordering::Relaxed) > 1,
            "expected multiple interleavings"
        );
    }

    #[test]
    fn catches_a_racy_read_modify_write() {
        // Non-atomic increment (load; store) must lose an update in SOME
        // interleaving; the model is required to find it.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&c);
                let h = super::thread::spawn(move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                });
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
                h.join().expect("child joins");
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "model must find the lost update");
    }

    #[test]
    fn exhausts_a_single_thread_model_in_one_run() {
        static RUNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let c = AtomicUsize::new(1);
            assert_eq!(c.load(Ordering::SeqCst), 1);
        });
        assert_eq!(RUNS.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
