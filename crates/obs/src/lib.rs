//! `strip-obs` — trace-level observability for the update-streams
//! reproduction.
//!
//! The controller argues its results from aggregate counters; this crate
//! makes the *schedule itself* inspectable. It provides
//!
//! * [`TraceSink`] — a ring-buffered flight recorder of typed
//!   [`TraceRecord`]s (dispatch decisions, preemptions, installs by path,
//!   aborts by reason, queue-depth changes), each stamped with sim-time;
//! * periodic [`GaugeSample`]s (OS/update-queue depth, ready-queue length,
//!   per-class stale counts, cumulative ρt/ρu) at a configurable cadence;
//! * exporters: Chrome trace-event JSON ([`chrome_trace_json`], loadable in
//!   Perfetto with one track per activity, matching the paper's Fig 3 CPU
//!   split) and CSV ([`records_csv`], [`gauges_csv`]).
//!
//! **Read-only guarantee.** Observers never feed back into the simulation:
//! the sink owns no RNG, schedules no events, and is consulted only behind
//! an `Option` that is `None` unless tracing was requested. A traced run
//! therefore produces a bit-identical `RunReport` to an untraced one, at
//! any gauge cadence (enforced by the golden-equivalence tests).

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Which CPU track a slice is charged to, mirroring the paper's Fig 3
/// split of processor time into transaction work (ρt) and update work (ρu).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTrack {
    /// Transaction work (plan segments, I/O stalls).
    Txn,
    /// Update work (receives, queue transfers, scans, installs, rules).
    Update,
}

impl TraceTrack {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceTrack::Txn => "txn",
            TraceTrack::Update => "update",
        }
    }
}

/// What kind of work a CPU slice performs (the dispatch decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceJob {
    /// A transaction plan segment (work or view-read lookup).
    Segment,
    /// A staleness scan of the update queue.
    StaleScan,
    /// An on-demand apply of a queued update (OD).
    OdApply,
    /// A buffer-pool miss stall (disk extension).
    IoStall,
    /// Installing one update (lookup + write).
    Install,
    /// Moving an OS-queue arrival into the update queue.
    QueueTransfer,
    /// Executing one fired rule (triggers extension).
    RuleExec,
    /// Applying one pending derived-view delta in the background
    /// (derived-view DAG extension).
    DagApply,
    /// A recursive on-demand refresh of a derived node's stale ancestor
    /// cone, performed inside a transaction slice (derived-view DAG
    /// extension).
    DagRefresh,
}

impl TraceJob {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceJob::Segment => "segment",
            TraceJob::StaleScan => "stale_scan",
            TraceJob::OdApply => "od_apply",
            TraceJob::IoStall => "io_stall",
            TraceJob::Install => "install",
            TraceJob::QueueTransfer => "queue_transfer",
            TraceJob::RuleExec => "rule_exec",
            TraceJob::DagApply => "dag_apply",
            TraceJob::DagRefresh => "dag_refresh",
        }
    }
}

/// How an install reached the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePath {
    /// Drained from the update queue while the CPU was free.
    Background,
    /// Applied straight off the OS queue (UF always, SU high class).
    Immediate,
    /// Applied during a transaction's view read (OD).
    OnDemand,
}

impl TracePath {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TracePath::Background => "background",
            TracePath::Immediate => "immediate",
            TracePath::OnDemand => "on_demand",
        }
    }
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAbort {
    /// Firm-deadline watchdog fired.
    MissedDeadline,
    /// Purged by the feasible-deadline policy.
    Infeasible,
    /// A view read observed stale data (abort-on-stale mode).
    StaleRead,
}

impl TraceAbort {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceAbort::MissedDeadline => "missed_deadline",
            TraceAbort::Infeasible => "infeasible",
            TraceAbort::StaleRead => "stale_read",
        }
    }
}

/// The typed payload of one trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// The scheduler granted the CPU to `job` for `secs` seconds — this is
    /// the dispatch decision at a scheduling point.
    SliceStart {
        /// Activity track the slice is charged to.
        track: TraceTrack,
        /// The chosen job.
        job: TraceJob,
        /// Planned slice length, seconds.
        secs: f64,
    },
    /// A slice left the CPU (ran to completion, or was interrupted).
    SliceEnd {
        /// Activity track the slice was charged to.
        track: TraceTrack,
        /// The job that was running.
        job: TraceJob,
        /// True when the slice was cut short by a preemption/abort.
        interrupted: bool,
    },
    /// A running transaction was preempted by an arrival; the next update
    /// slice owes the `2·x_switch` receive cost.
    Preempt {
        /// Id of the preempted transaction.
        txn: u64,
        /// Context-switch cost charged (seconds).
        cost_secs: f64,
    },
    /// An update finished its install slice.
    Install {
        /// How the install was triggered.
        path: TracePath,
        /// True for the high-importance partition.
        high_class: bool,
        /// True when the lookup found a value at least as recent, so the
        /// write was skipped.
        superseded: bool,
    },
    /// A transaction aborted.
    Abort {
        /// Transaction id.
        txn: u64,
        /// Why it aborted.
        reason: TraceAbort,
    },
    /// A transaction committed on time.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// The OS/update queue depths changed.
    QueueDepth {
        /// OS-queue length after the change.
        os: u32,
        /// Update-queue length after the change.
        uq: u32,
    },
}

/// One trace record: a sim-time stamp plus a typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulation time, seconds.
    pub at: f64,
    /// The typed payload.
    pub kind: TraceKind,
}

/// Instantaneous gauge values read at a sampling tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaugeValues {
    /// OS-queue depth.
    pub os_depth: u32,
    /// Update-queue depth.
    pub uq_depth: u32,
    /// Ready-queue length (waiting transactions).
    pub ready_len: u32,
    /// Currently-stale low-importance objects.
    pub stale_low: f64,
    /// Currently-stale high-importance objects.
    pub stale_high: f64,
    /// Cumulative transaction CPU fraction since t=0.
    pub rho_t: f64,
    /// Cumulative update CPU fraction since t=0.
    pub rho_u: f64,
}

/// One periodic gauge sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// Nominal tick time (a multiple of the cadence), seconds.
    pub at: f64,
    /// The values read at the first event at or after the tick.
    pub values: GaugeValues,
}

/// Configuration of a trace capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Ring capacity: at most this many records are retained; when full the
    /// oldest are overwritten (and counted in [`TraceData::overwritten`]).
    pub capacity: usize,
    /// Gauge-sampling cadence in simulated seconds; `None` disables gauges.
    pub gauge_every: Option<f64>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 16,
            gauge_every: Some(1.0),
        }
    }
}

/// The finished capture of one run: everything the sink retained.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Policy label of the traced run ("UF", "TF", "SU", "OD", "FX").
    pub policy: String,
    /// Retained records in time order (the newest `capacity` of them).
    pub records: Vec<TraceRecord>,
    /// Records evicted because the ring was full.
    pub overwritten: u64,
    /// Periodic gauge samples (empty when sampling was disabled).
    pub gauges: Vec<GaugeSample>,
}

/// Ring-buffered trace sink. The simulation holds one behind an
/// `Option` and calls [`TraceSink::record`] at its scheduling points;
/// [`TraceSink::finish`] turns it into an immutable [`TraceData`].
#[derive(Debug)]
pub struct TraceSink {
    policy: String,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    overwritten: u64,
    gauge_every: Option<f64>,
    next_gauge: f64,
    gauges: Vec<GaugeSample>,
}

impl TraceSink {
    /// Creates a sink for a run under `policy` (the label stamped on the
    /// exported tracks).
    #[must_use]
    pub fn new(cfg: TraceConfig, policy: &str) -> Self {
        TraceSink {
            policy: policy.to_string(),
            capacity: cfg.capacity.max(1),
            records: VecDeque::with_capacity(cfg.capacity.clamp(1, 1 << 16)),
            overwritten: 0,
            gauge_every: cfg.gauge_every.filter(|c| *c > 0.0),
            next_gauge: 0.0,
            gauges: Vec::new(),
        }
    }

    /// Appends one record, evicting the oldest when the ring is full.
    pub fn record(&mut self, at: f64, kind: TraceKind) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.overwritten += 1;
        }
        self.records.push_back(TraceRecord { at, kind });
    }

    /// True when the clock has reached the next gauge tick (callers skip
    /// the cost of reading gauge values otherwise).
    #[must_use]
    pub fn gauge_due(&self, now: f64) -> bool {
        self.gauge_every.is_some_and(|_| now >= self.next_gauge)
    }

    /// Records `values` for every cadence tick at or before `now`, so the
    /// series stays regular even across long event gaps.
    pub fn push_gauges(&mut self, now: f64, values: GaugeValues) {
        let Some(every) = self.gauge_every else {
            return;
        };
        while self.next_gauge <= now {
            self.gauges.push(GaugeSample {
                at: self.next_gauge,
                values,
            });
            self.next_gauge += every;
        }
    }

    /// Consumes the sink into its immutable capture.
    #[must_use]
    pub fn finish(self) -> TraceData {
        TraceData {
            policy: self.policy,
            records: self.records.into_iter().collect(),
            overwritten: self.overwritten,
            gauges: self.gauges,
        }
    }
}

// ---- exporters --------------------------------------------------------------

fn push_json_event(out: &mut String, fields: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push('\n');
    out.push_str("    {");
    out.push_str(fields);
    out.push('}');
}

fn tid_of(track: TraceTrack) -> u32 {
    match track {
        TraceTrack::Txn => 1,
        TraceTrack::Update => 2,
    }
}

const TID_EVENTS: u32 = 3;

fn us(at: f64) -> f64 {
    at * 1e6
}

/// Renders a capture as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load). Slices appear as begin/end pairs on one track
/// per activity (`txn CPU` / `update CPU`, the paper's Fig 3 split);
/// preemptions, installs, aborts and commits are instant events on a third
/// track; queue depths and the periodic gauges are counter tracks.
#[must_use]
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut s = String::with_capacity(256 + data.records.len() * 96);
    let _ = write!(
        s,
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"policy\": \"{}\", \"overwritten\": {}}},\n  \"traceEvents\": [",
        data.policy, data.overwritten
    );
    let meta = [
        (0, format!("{} run", data.policy)),
        (tid_of(TraceTrack::Txn), "txn CPU (rho_t)".to_string()),
        (tid_of(TraceTrack::Update), "update CPU (rho_u)".to_string()),
        (TID_EVENTS, "scheduler events".to_string()),
    ];
    for (tid, name) in &meta {
        let (ph, key) = if *tid == 0 {
            ("M", "process_name")
        } else {
            ("M", "thread_name")
        };
        push_json_event(
            &mut s,
            &format!(
                "\"name\": \"{key}\", \"ph\": \"{ph}\", \"pid\": 0, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{name}\"}}"
            ),
        );
    }
    for r in &data.records {
        let ts = us(r.at);
        match r.kind {
            TraceKind::SliceStart { track, job, secs } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"{}\", \"ph\": \"B\", \"ts\": {ts}, \"pid\": 0, \"tid\": {}, \
                     \"args\": {{\"planned_secs\": {secs}}}",
                    job.label(),
                    tid_of(track)
                ),
            ),
            TraceKind::SliceEnd {
                track,
                job,
                interrupted,
            } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"{}\", \"ph\": \"E\", \"ts\": {ts}, \"pid\": 0, \"tid\": {}, \
                     \"args\": {{\"interrupted\": {interrupted}}}",
                    job.label(),
                    tid_of(track)
                ),
            ),
            TraceKind::Preempt { txn, cost_secs } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"preempt\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \
                     \"pid\": 0, \"tid\": {TID_EVENTS}, \
                     \"args\": {{\"txn\": {txn}, \"cost_secs\": {cost_secs}}}"
                ),
            ),
            TraceKind::Install {
                path,
                high_class,
                superseded,
            } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"install:{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \
                     \"pid\": 0, \"tid\": {TID_EVENTS}, \
                     \"args\": {{\"high_class\": {high_class}, \"superseded\": {superseded}}}",
                    path.label()
                ),
            ),
            TraceKind::Abort { txn, reason } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"abort:{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \
                     \"pid\": 0, \"tid\": {TID_EVENTS}, \"args\": {{\"txn\": {txn}}}",
                    reason.label()
                ),
            ),
            TraceKind::Commit { txn } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"commit\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \
                     \"pid\": 0, \"tid\": {TID_EVENTS}, \"args\": {{\"txn\": {txn}}}"
                ),
            ),
            TraceKind::QueueDepth { os, uq } => push_json_event(
                &mut s,
                &format!(
                    "\"name\": \"queue depth\", \"ph\": \"C\", \"ts\": {ts}, \"pid\": 0, \
                     \"args\": {{\"os\": {os}, \"uq\": {uq}}}"
                ),
            ),
        }
    }
    for g in &data.gauges {
        let ts = us(g.at);
        let v = &g.values;
        push_json_event(
            &mut s,
            &format!(
                "\"name\": \"gauges\", \"ph\": \"C\", \"ts\": {ts}, \"pid\": 0, \
                 \"args\": {{\"ready\": {}, \"stale_low\": {}, \"stale_high\": {}, \
                 \"rho_t\": {}, \"rho_u\": {}}}",
                v.ready_len, v.stale_low, v.stale_high, v.rho_t, v.rho_u
            ),
        );
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Renders the records as CSV: `at,kind,track,job,detail,a,b`.
#[must_use]
pub fn records_csv(data: &TraceData) -> String {
    let mut s = String::with_capacity(64 + data.records.len() * 48);
    s.push_str("at,kind,track,job,detail,a,b\n");
    for r in &data.records {
        let at = r.at;
        let line = match r.kind {
            TraceKind::SliceStart { track, job, secs } => {
                format!(
                    "{at},slice_start,{},{},,{secs},",
                    track.label(),
                    job.label()
                )
            }
            TraceKind::SliceEnd {
                track,
                job,
                interrupted,
            } => format!(
                "{at},slice_end,{},{},,{},",
                track.label(),
                job.label(),
                u8::from(interrupted)
            ),
            TraceKind::Preempt { txn, cost_secs } => {
                format!("{at},preempt,,,,{txn},{cost_secs}")
            }
            TraceKind::Install {
                path,
                high_class,
                superseded,
            } => format!(
                "{at},install,,,{},{},{}",
                path.label(),
                u8::from(high_class),
                u8::from(superseded)
            ),
            TraceKind::Abort { txn, reason } => {
                format!("{at},abort,,,{},{txn},", reason.label())
            }
            TraceKind::Commit { txn } => format!("{at},commit,,,,{txn},"),
            TraceKind::QueueDepth { os, uq } => format!("{at},queue_depth,,,,{os},{uq}"),
        };
        s.push_str(&line);
        s.push('\n');
    }
    s
}

/// Renders the gauge series as CSV:
/// `at,os_depth,uq_depth,ready_len,stale_low,stale_high,rho_t,rho_u`.
#[must_use]
pub fn gauges_csv(data: &TraceData) -> String {
    let mut s = String::with_capacity(64 + data.gauges.len() * 48);
    s.push_str("at,os_depth,uq_depth,ready_len,stale_low,stale_high,rho_t,rho_u\n");
    for g in &data.gauges {
        let v = &g.values;
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{}",
            g.at, v.os_depth, v.uq_depth, v.ready_len, v.stale_low, v.stale_high, v.rho_t, v.rho_u
        );
    }
    s
}

/// Builder for Prometheus text exposition format (version 0.0.4), used by
/// the `stripd` `/metrics` endpoint.
///
/// Metrics appear in insertion order — callers emit them from a fixed
/// sequence of struct fields, so the rendered page is deterministic (no
/// hash-map iteration anywhere).
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// Creates an empty page.
    #[must_use]
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends a counter metric.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a gauge metric.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends one gauge with a single `{label="value"}` pair per sample.
    /// Samples render in the order given.
    pub fn gauge_labeled(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, f64)]) {
        self.header(name, help, "gauge");
        for (lv, v) in samples {
            let _ = writeln!(self.out, "{name}{{{label}=\"{lv}\"}} {v}");
        }
    }

    /// The rendered exposition page.
    #[must_use]
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_text_renders_in_insertion_order() {
        let mut p = PromText::new();
        p.counter("strip_updates_ingested_total", "Updates ingested.", 7);
        p.gauge("strip_uq_depth", "Update-queue depth.", 3.0);
        p.gauge_labeled(
            "strip_fold",
            "Stale fraction.",
            "class",
            &[("low", 0.25), ("high", 0.5)],
        );
        let page = p.render();
        let expected = "# HELP strip_updates_ingested_total Updates ingested.\n\
                        # TYPE strip_updates_ingested_total counter\n\
                        strip_updates_ingested_total 7\n\
                        # HELP strip_uq_depth Update-queue depth.\n\
                        # TYPE strip_uq_depth gauge\n\
                        strip_uq_depth 3\n\
                        # HELP strip_fold Stale fraction.\n\
                        # TYPE strip_fold gauge\n\
                        strip_fold{class=\"low\"} 0.25\n\
                        strip_fold{class=\"high\"} 0.5\n";
        assert_eq!(page, expected);
    }

    fn sink_with(capacity: usize, cadence: Option<f64>) -> TraceSink {
        TraceSink::new(
            TraceConfig {
                capacity,
                gauge_every: cadence,
            },
            "TF",
        )
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut s = sink_with(3, None);
        for i in 0..5u32 {
            s.record(f64::from(i), TraceKind::Commit { txn: u64::from(i) });
        }
        let data = s.finish();
        assert_eq!(data.records.len(), 3);
        assert_eq!(data.overwritten, 2);
        assert_eq!(data.records[0].at, 2.0);
        assert_eq!(data.records[2].at, 4.0);
    }

    #[test]
    fn gauges_fill_every_crossed_tick() {
        let mut s = sink_with(8, Some(0.5));
        assert!(s.gauge_due(0.0));
        s.push_gauges(0.0, GaugeValues::default());
        assert!(!s.gauge_due(0.4));
        assert!(s.gauge_due(1.6));
        let v = GaugeValues {
            uq_depth: 7,
            ..GaugeValues::default()
        };
        s.push_gauges(1.6, v);
        let data = s.finish();
        let ticks: Vec<f64> = data.gauges.iter().map(|g| g.at).collect();
        assert_eq!(ticks, vec![0.0, 0.5, 1.0, 1.5]);
        assert_eq!(data.gauges[3].values.uq_depth, 7);
    }

    #[test]
    fn disabled_cadence_records_nothing() {
        let mut s = sink_with(8, None);
        assert!(!s.gauge_due(100.0));
        s.push_gauges(100.0, GaugeValues::default());
        assert!(s.finish().gauges.is_empty());
    }

    #[test]
    fn chrome_json_has_balanced_slices_and_metadata() {
        let mut s = sink_with(16, Some(1.0));
        s.record(
            0.25,
            TraceKind::SliceStart {
                track: TraceTrack::Update,
                job: TraceJob::Install,
                secs: 0.01,
            },
        );
        s.record(
            0.26,
            TraceKind::SliceEnd {
                track: TraceTrack::Update,
                job: TraceJob::Install,
                interrupted: false,
            },
        );
        s.record(
            0.26,
            TraceKind::Install {
                path: TracePath::Background,
                high_class: true,
                superseded: false,
            },
        );
        s.push_gauges(0.0, GaugeValues::default());
        let json = chrome_trace_json(&s.finish());
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 1);
        assert!(json.contains("install:background"));
        assert!(json.contains("update CPU (rho_u)"));
        // Crude but effective balance check for the JSON itself.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_exports_cover_all_kinds() {
        let mut s = sink_with(16, Some(1.0));
        s.record(
            0.1,
            TraceKind::Preempt {
                txn: 9,
                cost_secs: 0.002,
            },
        );
        s.record(
            0.2,
            TraceKind::Abort {
                txn: 9,
                reason: TraceAbort::StaleRead,
            },
        );
        s.record(0.3, TraceKind::QueueDepth { os: 2, uq: 11 });
        s.push_gauges(0.0, GaugeValues::default());
        let data = s.finish();
        let rec = records_csv(&data);
        assert!(rec.starts_with("at,kind,"));
        assert!(rec.contains("preempt"));
        assert!(rec.contains("abort,,,stale_read,9,"));
        assert!(rec.contains("queue_depth,,,,2,11"));
        let g = gauges_csv(&data);
        assert_eq!(g.lines().count(), 2);
    }
}
