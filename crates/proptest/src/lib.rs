//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this path crate
//! provides the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range/tuple/`Just`
//! strategies, [`collection::vec`], [`option::of`], [`bool::ANY`],
//! weighted [`prop_oneof!`], and the [`proptest!`] test macro driven by a
//! deterministic [`TestRng`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with its case number; re-run
//!   with the same build to reproduce (generation is fully deterministic,
//!   seeded from the test name).
//! * **Fixed seeding.** There is no `PROPTEST_` environment handling; every
//!   run explores the same cases, which suits a reproducibility-focused
//!   repo (the simulator itself must be bit-for-bit deterministic anyway).

#![warn(missing_docs)]

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case, seeded from the test name and
    /// case index so cases are independent and reproducible.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-input purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating test inputs (object-safe subset of proptest's
/// trait; combinators are provided as defaulted `Sized` methods).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.next_below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Weighted union of strategies — the engine behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covers every pick")
    }
}

// ---------------------------------------------------------------------------
// Collections / option / bool
// ---------------------------------------------------------------------------

/// Length specification for [`collection::vec`]: a fixed size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding each boolean with probability one half.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration
// ---------------------------------------------------------------------------

/// Number of cases each property runs (proptest's `ProptestConfig` subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest {}: case {}/{} failed (deterministic; rerun reproduces it)",
                        stringify!($name), case, config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` here — this stub
/// does not shrink, so early-return error plumbing buys nothing).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0u32..100, 0.0f64..1.0), 1..20);
        let mut a = crate::TestRng::for_case("det", 7);
        let mut b = crate::TestRng::for_case("det", 7);
        assert_eq!(strat.generate(&mut a).len(), strat.generate(&mut b).len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_arguments(xs in prop::collection::vec(0u8..10, 1..5), flag in crate::bool::ANY) {
            prop_assert!(xs.len() < 5);
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(flag as u8 <= 1, true);
            for x in xs {
                prop_assert!(x < 10);
            }
        }
    }
}
