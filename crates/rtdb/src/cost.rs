//! The CPU cost model (paper §3.3, §5.3, Table 3).
//!
//! All service demands are expressed in *instructions* and converted to
//! seconds by dividing by the processor speed `ips`. Only CPU costs are
//! modelled: the database is main-memory resident, so there is no I/O, and
//! concurrency control on general data is folded into transaction
//! computation time (paper §5.2).

use serde::{Deserialize, Serialize};

/// Instruction-count cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Instructions executed per second (`ips`, Table 3: 50 × 10⁶).
    pub ips: f64,
    /// Instructions to locate a data object through the index
    /// (`x_lookup`, Table 3: 4000).
    pub x_lookup: f64,
    /// Instructions to write an update into a located object
    /// (`x_update`, Table 3: 20000).
    pub x_update: f64,
    /// Instructions for one context switch (`x_switch`, Table 3: 0).
    /// Preempting a transaction to receive an update costs `2 · x_switch`.
    pub x_switch: f64,
    /// Proportionality constant for queue insert/remove: the cost of one
    /// operation is `x_queue · ln(n)` where `n` is the queue length
    /// (`x_queue`, Table 3: 0).
    pub x_queue: f64,
    /// Proportionality constant for scanning the update queue: a scan over
    /// `n_q` queued updates costs `x_scan · n_q` (`x_scan`, Table 3: 0).
    pub x_scan: f64,
}

impl Default for CostModel {
    /// The paper's Table 3 baseline.
    fn default() -> Self {
        CostModel {
            ips: 50.0e6,
            x_lookup: 4_000.0,
            x_update: 20_000.0,
            x_switch: 0.0,
            x_queue: 0.0,
            x_scan: 0.0,
        }
    }
}

impl CostModel {
    /// Converts an instruction count to seconds.
    #[inline]
    #[must_use]
    pub fn secs(&self, instructions: f64) -> f64 {
        instructions / self.ips
    }

    /// Time to locate one object via the index.
    #[inline]
    #[must_use]
    pub fn lookup_time(&self) -> f64 {
        self.secs(self.x_lookup)
    }

    /// Time to install an update into a located object (excludes lookup).
    #[inline]
    #[must_use]
    pub fn update_write_time(&self) -> f64 {
        self.secs(self.x_update)
    }

    /// Full install time: lookup plus write (paper §5.3:
    /// "the number of instructions to perform an update is
    /// `x_lookup + x_update`").
    #[inline]
    #[must_use]
    pub fn install_time(&self) -> f64 {
        self.secs(self.x_lookup + self.x_update)
    }

    /// Time for one context switch.
    #[inline]
    #[must_use]
    pub fn switch_time(&self) -> f64 {
        self.secs(self.x_switch)
    }

    /// Time to preempt a running transaction to receive an update: two
    /// switches (out and back, paper §3.3 step 2).
    #[inline]
    #[must_use]
    pub fn preempt_time(&self) -> f64 {
        self.secs(2.0 * self.x_switch)
    }

    /// Time to add or remove one update to/from a queue currently holding
    /// `n` updates: `x_queue · ln(n)` (paper §3.3 step 3). Defined as zero
    /// for `n <= 1` (ln is clamped at zero).
    #[inline]
    #[must_use]
    pub fn queue_op_time(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        self.secs(self.x_queue * (n as f64).ln())
    }

    /// Time to scan `n_q` updates in the update queue: `x_scan · n_q`
    /// (paper §4.4).
    #[inline]
    #[must_use]
    pub fn scan_time(&self, n_q: usize) -> f64 {
        self.secs(self.x_scan * n_q as f64)
    }

    /// Constant-time queue probe used when the hash-indexed update queue
    /// extension is enabled: one `x_scan` worth of work regardless of
    /// queue length (the paper's §4.4 "with the help of an index ... the
    /// amortized cost ... would be much less").
    #[inline]
    #[must_use]
    pub fn indexed_probe_time(&self) -> f64 {
        self.secs(self.x_scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_3() {
        let c = CostModel::default();
        assert_eq!(c.ips, 50.0e6);
        assert_eq!(c.x_lookup, 4_000.0);
        assert_eq!(c.x_update, 20_000.0);
        assert_eq!(c.x_switch, 0.0);
        assert_eq!(c.x_queue, 0.0);
        assert_eq!(c.x_scan, 0.0);
    }

    #[test]
    fn install_time_is_24000_instructions() {
        let c = CostModel::default();
        assert!((c.install_time() - 24_000.0 / 50.0e6).abs() < 1e-15);
        // 400 installs/sec should consume ~19.2% of the CPU — the paper's
        // "about one-fifth of the system time".
        assert!((400.0 * c.install_time() - 0.192).abs() < 1e-12);
    }

    #[test]
    fn queue_op_scales_logarithmically() {
        let c = CostModel {
            x_queue: 100.0,
            ..CostModel::default()
        };
        assert_eq!(c.queue_op_time(0), 0.0);
        assert_eq!(c.queue_op_time(1), 0.0);
        let t10 = c.queue_op_time(10);
        let t100 = c.queue_op_time(100);
        assert!(t100 > t10);
        assert!((t100 / t10 - 2.0).abs() < 0.01, "ln(100)/ln(10) = 2");
    }

    #[test]
    fn scan_scales_linearly() {
        let c = CostModel {
            x_scan: 50.0,
            ..CostModel::default()
        };
        assert_eq!(c.scan_time(0), 0.0);
        assert!((c.scan_time(200) - c.secs(10_000.0)).abs() < 1e-18);
        assert!((c.indexed_probe_time() - c.secs(50.0)).abs() < 1e-18);
    }

    #[test]
    fn preempt_is_two_switches() {
        let c = CostModel {
            x_switch: 1_000.0,
            ..CostModel::default()
        };
        assert!((c.preempt_time() - 2.0 * c.switch_time()).abs() < 1e-18);
    }
}
