//! Derived-view DAGs maintained by incremental delta propagation
//! (ROADMAP item 3: views over views, beyond the flat [`crate::triggers`]
//! rules).
//!
//! A [`ViewDag`] is a validated-acyclic graph of derived nodes. Rank-0
//! nodes aggregate base view objects; higher ranks aggregate lower-rank
//! nodes. Installing an update into a base object no longer fires a
//! whole-refresh rule — it enqueues a *typed delta* for every dependent
//! node ([`DeltaKind::Base`]), and applying a delta recomputes that one
//! node from its current inputs and cascades further deltas
//! ([`DeltaKind::Cascade`]) only when the value actually changed.
//!
//! Invariants the scheduler and the metrics rely on:
//!
//! * **Conservation** — every enqueue ends in exactly one bucket:
//!   `enqueued = applied + coalesced + shed + pending`.
//! * **Quiescent equivalence** — applying pending deltas in ascending
//!   node-id order (ids are topologically sorted) until none remain leaves
//!   every node bit-identical to a full recompute, because an apply is an
//!   exact recompute from current inputs and a value change always
//!   cascades.
//! * **Transitive staleness** — a node is stale iff it has an unapplied
//!   delta or any of its derived inputs is stale; the flag is maintained
//!   incrementally by counter cascades, never by graph walks on the hot
//!   path.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

use crate::object::{Importance, ViewObjectId};
use crate::store::Store;

/// Shape and cost knobs of a generated derived-view DAG (threaded through
/// `SimConfig` so DAG shape is a first-class sweep axis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagSpec {
    /// Number of derived ranks (≥ 1).
    pub depth: u32,
    /// Nodes per rank.
    pub width: u32,
    /// Inputs per node (base objects at rank 0, lower-rank nodes above).
    pub fanout: u32,
    /// Instructions one delta application costs *per input edge* of the
    /// recomputed node.
    pub edge_cost_instr: f64,
    /// Bound on distinct nodes with pending deltas; inserts beyond it are
    /// shed (merges into an already-pending node are always accepted).
    pub max_pending: u32,
    /// Mean number of derived-node reads per transaction (Poisson).
    pub derived_reads_mean: f64,
}

impl Default for DagSpec {
    fn default() -> Self {
        DagSpec {
            depth: 3,
            width: 50,
            fanout: 3,
            edge_cost_instr: 2_000.0,
            max_pending: 10_000,
            derived_reads_mean: 2.0,
        }
    }
}

/// One input edge of a derived node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DagInput {
    /// A base view object (read from the store).
    Base(ViewObjectId),
    /// A lower-id derived node (read from the DAG state).
    Derived(u32),
}

/// One derived node: its value is the mean of its inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNode {
    /// Node id; ids are a topological order (every derived input has a
    /// strictly smaller id).
    pub id: u32,
    /// Input edges.
    pub inputs: Vec<DagInput>,
}

/// Why a node list does not form a valid DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// `nodes[i].id != i`.
    BadId(u32),
    /// A derived input references a node with id ≥ the node's own — a self
    /// edge, a forward edge, or a cycle.
    ForwardEdge {
        /// The offending node.
        node: u32,
        /// The input it references.
        input: u32,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::BadId(i) => write!(f, "node at index {i} has a mismatched id"),
            DagError::ForwardEdge { node, input } => write!(
                f,
                "node {node} reads node {input}: derived inputs must have a \
                 strictly smaller id (acyclicity)"
            ),
        }
    }
}

/// A validated-acyclic, topologically ranked derived-view graph with both
/// forward (inputs) and reverse (dependents) adjacency.
#[derive(Debug, Clone)]
pub struct ViewDag {
    nodes: Vec<DagNode>,
    ranks: Vec<u32>,
    /// base object → nodes reading it.
    base_dependents: BTreeMap<ViewObjectId, Vec<u32>>,
    /// derived node → higher nodes reading it.
    dependents: Vec<Vec<u32>>,
}

impl ViewDag {
    /// Validates `nodes` (ids in order, no forward/self edges — which is
    /// exactly acyclicity for an id-ordered list) and builds the rank and
    /// reverse-adjacency indexes.
    ///
    /// # Errors
    ///
    /// Returns [`DagError`] on a mismatched id or an edge that would make
    /// the graph cyclic.
    pub fn new(nodes: Vec<DagNode>) -> Result<Self, DagError> {
        let mut ranks = vec![0u32; nodes.len()];
        let mut base_dependents: BTreeMap<ViewObjectId, Vec<u32>> = BTreeMap::new();
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            if node.id != i as u32 {
                return Err(DagError::BadId(i as u32));
            }
            let mut rank = 0;
            for input in &node.inputs {
                match *input {
                    DagInput::Base(obj) => base_dependents.entry(obj).or_default().push(node.id),
                    DagInput::Derived(j) => {
                        if j >= node.id {
                            return Err(DagError::ForwardEdge {
                                node: node.id,
                                input: j,
                            });
                        }
                        rank = rank.max(ranks[j as usize] + 1);
                        dependents[j as usize].push(node.id);
                    }
                }
            }
            ranks[i] = rank;
        }
        for deps in base_dependents.values_mut() {
            deps.dedup();
        }
        for deps in &mut dependents {
            deps.dedup();
        }
        Ok(ViewDag {
            nodes,
            ranks,
            base_dependents,
            dependents,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in id (topological) order.
    #[must_use]
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Topological rank of `node` (0 = reads only base objects).
    #[must_use]
    pub fn rank(&self, node: u32) -> u32 {
        self.ranks[node as usize]
    }

    /// Input edges of `node`.
    #[must_use]
    pub fn inputs(&self, node: u32) -> &[DagInput] {
        &self.nodes[node as usize].inputs
    }

    /// Derived nodes that read base object `object`.
    #[must_use]
    pub fn base_dependents(&self, object: ViewObjectId) -> &[u32] {
        self.base_dependents.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Derived nodes that read derived node `node`.
    #[must_use]
    pub fn dependents(&self, node: u32) -> &[u32] {
        &self.dependents[node as usize]
    }
}

/// Deterministically generates a `spec`-shaped DAG over an
/// `n_low`/`n_high` base object space: `depth × width` nodes, rank-0
/// inputs drawn uniformly from the base space (same idiom as
/// [`crate::triggers::generate_rules`]), higher ranks drawing their first
/// input from the immediately lower rank (so declared depth is realised)
/// and the rest from any lower rank.
#[must_use]
pub fn generate_dag(
    spec: &DagSpec,
    n_low: u32,
    n_high: u32,
    rng: &mut strip_sim::rng::Xoshiro256pp,
) -> ViewDag {
    let total = u64::from(n_low) + u64::from(n_high);
    let width = spec.width.max(1);
    let mut nodes = Vec::with_capacity((spec.depth * width) as usize);
    for rank in 0..spec.depth.max(1) {
        for w in 0..width {
            let id = rank * width + w;
            let inputs = (0..spec.fanout.max(1))
                .map(|edge| {
                    if rank == 0 {
                        let k = rng.next_below(total.max(1));
                        if k < u64::from(n_low) {
                            DagInput::Base(ViewObjectId::new(Importance::Low, k as u32))
                        } else {
                            DagInput::Base(ViewObjectId::new(
                                Importance::High,
                                (k - u64::from(n_low)) as u32,
                            ))
                        }
                    } else if edge == 0 {
                        // Anchor edge into the previous rank.
                        DagInput::Derived(
                            (rank - 1) * width + rng.next_below(u64::from(width)) as u32,
                        )
                    } else {
                        DagInput::Derived(rng.next_below(u64::from(rank * width)) as u32)
                    }
                })
                .collect();
            nodes.push(DagNode { id, inputs });
        }
    }
    ViewDag::new(nodes).expect("generated DAGs are rank-structured")
}

/// What kind of change a pending delta represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// A base-object install changed one of the node's base inputs.
    Base,
    /// A lower node's applied delta changed one of its derived inputs.
    Cascade,
}

/// The coalesced pending delta of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingDelta {
    /// Kind of the first enqueued delta (later merges keep it).
    pub kind: DeltaKind,
    /// How many deltas were merged into this entry (≥ 1).
    pub merged: u64,
    /// Sum of the input-change magnitudes merged in (diagnostic only —
    /// application recomputes exactly, it never adds magnitudes).
    pub magnitude: f64,
    /// When the first delta was enqueued (propagation lag anchor).
    pub first_enqueued: SimTime,
}

/// Terminal bucket of one enqueue event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// A new pending entry was created.
    Queued,
    /// Merged into an already-pending entry for the node.
    Coalesced,
    /// Rejected: `max_pending` distinct nodes already pending.
    Shed,
}

/// Monotonic propagation counters (the conservation law's buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagCounters {
    /// Delta enqueue events (base + cascade).
    pub enqueued: u64,
    /// Pending entries applied.
    pub applied: u64,
    /// Enqueues merged into an existing entry.
    pub coalesced: u64,
    /// Enqueues rejected by the pending bound.
    pub shed: u64,
}

/// Result of applying one pending delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyResult {
    /// The recomputed value.
    pub value: f64,
    /// Whether the value changed bit-wise (and therefore cascaded).
    pub changed: bool,
    /// Seconds between the entry's first enqueue and this application.
    pub lag: f64,
    /// Kind of the applied entry.
    pub kind: DeltaKind,
    /// How many enqueues the entry had coalesced.
    pub merged: u64,
}

/// Mutable maintenance state over a [`ViewDag`]: node values, the
/// coalesced pending-delta map, and incrementally maintained transitive
/// staleness.
#[derive(Debug, Clone)]
pub struct DagState {
    values: Vec<f64>,
    pending: BTreeMap<u32, PendingDelta>,
    /// Per node: how many of its *derived* inputs are currently stale.
    stale_inputs: Vec<u32>,
    stale_now: u32,
    max_pending: usize,
    /// Conservation counters.
    pub stats: DagCounters,
}

impl DagState {
    /// Fresh state: every node's value is a full recompute against
    /// `store`, nothing pending, nothing stale.
    #[must_use]
    pub fn new(dag: &ViewDag, store: &Store, max_pending: u32) -> Self {
        DagState {
            values: full_recompute(dag, store),
            pending: BTreeMap::new(),
            stale_inputs: vec![0; dag.len()],
            stale_now: 0,
            max_pending: max_pending.max(1) as usize,
            stats: DagCounters::default(),
        }
    }

    /// Current value of `node`.
    #[must_use]
    pub fn value(&self, node: u32) -> f64 {
        self.values[node as usize]
    }

    /// All current values in node order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Transitive staleness: the node has an unapplied delta or a stale
    /// derived input.
    #[must_use]
    pub fn is_stale(&self, node: u32) -> bool {
        self.pending.contains_key(&node) || self.stale_inputs[node as usize] > 0
    }

    /// How many nodes are stale right now.
    #[must_use]
    pub fn stale_count(&self) -> u32 {
        self.stale_now
    }

    /// Number of nodes with a pending delta.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Lowest node id with a pending delta — the next node the rank-order
    /// drain applies (ids are topological, so the minimum key is never
    /// waiting on another pending node below it).
    #[must_use]
    pub fn next_pending(&self) -> Option<u32> {
        self.pending.keys().next().copied()
    }

    /// The pending entry of `node`, if any.
    #[must_use]
    pub fn pending(&self, node: u32) -> Option<&PendingDelta> {
        self.pending.get(&node)
    }

    fn flip_on(&mut self, dag: &ViewDag, node: u32) {
        // `node` just became stale: bump every dependent's stale-input
        // count, recursing into dependents that flip in turn.
        let mut stack = vec![node];
        self.stale_now += 1;
        while let Some(n) = stack.pop() {
            for &d in dag.dependents(n) {
                let was = self.is_stale(d);
                self.stale_inputs[d as usize] += 1;
                if !was {
                    self.stale_now += 1;
                    stack.push(d);
                }
            }
        }
    }

    fn flip_off(&mut self, dag: &ViewDag, node: u32) {
        // `node` just became fresh: the exact inverse cascade.
        let mut stack = vec![node];
        self.stale_now -= 1;
        while let Some(n) = stack.pop() {
            for &d in dag.dependents(n) {
                self.stale_inputs[d as usize] -= 1;
                if !self.is_stale(d) {
                    self.stale_now -= 1;
                    stack.push(d);
                }
            }
        }
    }

    fn enqueue(
        &mut self,
        dag: &ViewDag,
        node: u32,
        kind: DeltaKind,
        magnitude: f64,
        now: SimTime,
    ) -> EnqueueOutcome {
        self.stats.enqueued += 1;
        if let Some(p) = self.pending.get_mut(&node) {
            p.merged += 1;
            p.magnitude += magnitude;
            self.stats.coalesced += 1;
            return EnqueueOutcome::Coalesced;
        }
        if self.pending.len() >= self.max_pending {
            self.stats.shed += 1;
            return EnqueueOutcome::Shed;
        }
        let was = self.is_stale(node);
        self.pending.insert(
            node,
            PendingDelta {
                kind,
                merged: 1,
                magnitude,
                first_enqueued: now,
            },
        );
        if !was {
            self.flip_on(dag, node);
        }
        EnqueueOutcome::Queued
    }

    /// A base-object install: enqueues one [`DeltaKind::Base`] delta per
    /// dependent node. Returns the number of enqueue events.
    pub fn on_base_install(
        &mut self,
        dag: &ViewDag,
        object: ViewObjectId,
        magnitude: f64,
        now: SimTime,
    ) -> usize {
        // The dependent list borrows the dag, not self.
        let deps: &[u32] = dag.base_dependents(object);
        for i in 0..deps.len() {
            let d = dag.base_dependents(object)[i];
            self.enqueue(dag, d, DeltaKind::Base, magnitude, now);
        }
        deps.len()
    }

    /// Applies the pending delta of `node`: exact recompute from current
    /// inputs, cascading to dependents when the value changed. Returns
    /// `None` when the node has nothing pending.
    pub fn apply(
        &mut self,
        dag: &ViewDag,
        store: &Store,
        node: u32,
        now: SimTime,
    ) -> Option<ApplyResult> {
        let entry = self.pending.remove(&node)?;
        self.stats.applied += 1;
        if self.stale_inputs[node as usize] == 0 {
            self.flip_off(dag, node);
        }
        let old = self.values[node as usize];
        let new = recompute_node(dag, store, &self.values, node);
        self.values[node as usize] = new;
        let changed = new.to_bits() != old.to_bits();
        if changed {
            for i in 0..dag.dependents(node).len() {
                let d = dag.dependents(node)[i];
                self.enqueue(dag, d, DeltaKind::Cascade, new - old, now);
            }
        }
        Some(ApplyResult {
            value: new,
            changed,
            lag: now.since(entry.first_enqueued),
            kind: entry.kind,
            merged: entry.merged,
        })
    }

    /// The pending ancestor closure of `node`, ascending (= topological)
    /// order, including `node` itself: exactly the applications a
    /// recursive on-demand refresh performs before answering a read.
    #[must_use]
    pub fn pending_closure(&self, dag: &ViewDag, node: u32) -> Vec<u32> {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        let mut stack = vec![node];
        let mut found = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if self.pending.contains_key(&n) {
                found.insert(n);
            }
            for input in dag.inputs(n) {
                if let DagInput::Derived(j) = *input {
                    // Only walk into stale subtrees — fresh ancestors have
                    // nothing pending anywhere above them.
                    if self.is_stale(j) {
                        stack.push(j);
                    }
                }
            }
        }
        found.into_iter().collect()
    }

    /// The *stale* ancestor closure of `node`, ascending (= topological)
    /// order, including `node` itself when stale: every node a recursive
    /// on-demand refresh may recompute. A superset of
    /// [`DagState::pending_closure`] — transitively stale ancestors with
    /// nothing pending yet can receive an in-cone cascade mid-refresh, so
    /// a single ascending pass of [`DagState::apply`] over this set
    /// reaches quiescence of the cone (cascades that leave the cone stay
    /// pending for background propagation).
    #[must_use]
    pub fn stale_closure(&self, dag: &ViewDag, node: u32) -> Vec<u32> {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        let mut stack = vec![node];
        let mut found = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if self.is_stale(n) {
                found.insert(n);
            }
            for input in dag.inputs(n) {
                if let DagInput::Derived(j) = *input {
                    if self.is_stale(j) {
                        stack.push(j);
                    }
                }
            }
        }
        found.into_iter().collect()
    }
}

fn recompute_node(dag: &ViewDag, store: &Store, values: &[f64], node: u32) -> f64 {
    let inputs = dag.inputs(node);
    if inputs.is_empty() {
        return 0.0;
    }
    let sum: f64 = inputs
        .iter()
        .map(|input| match *input {
            DagInput::Base(obj) => store.view(obj).payload,
            DagInput::Derived(j) => values[j as usize],
        })
        .sum();
    sum / inputs.len() as f64
}

/// Full recompute of every node in topological order — the oracle the
/// incremental path must match at quiescent points, and the recovery
/// path's way to rebuild derived values from a recovered base store.
#[must_use]
pub fn full_recompute(dag: &ViewDag, store: &Store) -> Vec<f64> {
    let mut values = vec![0.0; dag.len()];
    for node in 0..dag.len() as u32 {
        values[node as usize] = recompute_node(dag, store, &values, node);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;
    use strip_sim::rng::Xoshiro256pp;

    fn obj(i: u32) -> ViewObjectId {
        ViewObjectId::new(Importance::Low, i)
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn install(store: &mut Store, i: u32, v: f64, at: f64) {
        let u = Update {
            seq: u64::from(i),
            object: obj(i),
            generation_ts: t(at),
            arrival_ts: t(at),
            payload: v,
            attr_mask: Update::COMPLETE,
        };
        store.install(&u);
    }

    /// diamond: 0,1 read base; 2 reads 0 and 1; 3 reads 2.
    fn diamond() -> ViewDag {
        ViewDag::new(vec![
            DagNode {
                id: 0,
                inputs: vec![DagInput::Base(obj(0)), DagInput::Base(obj(1))],
            },
            DagNode {
                id: 1,
                inputs: vec![DagInput::Base(obj(1)), DagInput::Base(obj(2))],
            },
            DagNode {
                id: 2,
                inputs: vec![DagInput::Derived(0), DagInput::Derived(1)],
            },
            DagNode {
                id: 3,
                inputs: vec![DagInput::Derived(2)],
            },
        ])
        .unwrap()
    }

    #[test]
    fn rejects_forward_and_self_edges() {
        let err = ViewDag::new(vec![DagNode {
            id: 0,
            inputs: vec![DagInput::Derived(0)],
        }])
        .unwrap_err();
        assert_eq!(err, DagError::ForwardEdge { node: 0, input: 0 });
        let err = ViewDag::new(vec![
            DagNode {
                id: 0,
                inputs: vec![DagInput::Derived(1)],
            },
            DagNode {
                id: 1,
                inputs: vec![],
            },
        ])
        .unwrap_err();
        assert_eq!(err, DagError::ForwardEdge { node: 0, input: 1 });
        assert!(ViewDag::new(vec![DagNode {
            id: 1,
            inputs: vec![]
        }])
        .is_err());
    }

    #[test]
    fn ranks_and_adjacency() {
        let dag = diamond();
        assert_eq!(
            (dag.rank(0), dag.rank(1), dag.rank(2), dag.rank(3)),
            (0, 0, 1, 2)
        );
        assert_eq!(dag.base_dependents(obj(1)), &[0, 1]);
        assert_eq!(dag.dependents(0), &[2]);
        assert_eq!(dag.dependents(2), &[3]);
        assert!(dag.base_dependents(obj(9)).is_empty());
    }

    #[test]
    fn base_install_cascades_and_quiescent_matches_full_recompute() {
        let dag = diamond();
        let mut store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 100);
        install(&mut store, 0, 10.0, 1.0);
        state.on_base_install(&dag, obj(0), 10.0, t(1.0));
        install(&mut store, 1, 4.0, 1.5);
        state.on_base_install(&dag, obj(1), 4.0, t(1.5));
        assert!(state.is_stale(0) && state.is_stale(1));
        assert!(state.is_stale(2) && state.is_stale(3), "transitive");
        // Drain in rank (id) order.
        while let Some(n) = state.next_pending() {
            state.apply(&dag, &store, n, t(2.0)).unwrap();
        }
        assert_eq!(state.stale_count(), 0);
        for (n, v) in full_recompute(&dag, &store).iter().enumerate() {
            assert_eq!(state.value(n as u32).to_bits(), v.to_bits(), "node {n}");
        }
        let s = state.stats;
        assert_eq!(
            s.enqueued,
            s.applied + s.coalesced + s.shed + state.pending_len() as u64
        );
    }

    #[test]
    fn coalescing_merges_per_node() {
        let dag = diamond();
        let store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 100);
        state.on_base_install(&dag, obj(1), 1.0, t(1.0)); // nodes 0 and 1
        state.on_base_install(&dag, obj(1), 2.0, t(2.0)); // both coalesce
        assert_eq!(state.stats.enqueued, 4);
        assert_eq!(state.stats.coalesced, 2);
        let p = state.pending(0).unwrap();
        assert_eq!(p.merged, 2);
        assert_eq!(p.first_enqueued, t(1.0));
        assert_eq!(p.kind, DeltaKind::Base);
    }

    #[test]
    fn shed_bound_rejects_new_nodes_but_not_merges() {
        let dag = diamond();
        let store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 1);
        // obj(0) → node 0 queued; obj(2) → node 1 shed (bound 1).
        state.on_base_install(&dag, obj(0), 1.0, t(1.0));
        state.on_base_install(&dag, obj(2), 1.0, t(1.1));
        assert_eq!(state.stats.shed, 1);
        // Another obj(0) install still merges into node 0.
        state.on_base_install(&dag, obj(0), 1.0, t(1.2));
        assert_eq!(state.stats.coalesced, 1);
        let s = state.stats;
        assert_eq!(
            s.enqueued,
            s.applied + s.coalesced + s.shed + state.pending_len() as u64
        );
    }

    #[test]
    fn transitive_staleness_clears_bottom_up_only() {
        let dag = diamond();
        let mut store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 100);
        install(&mut store, 0, 8.0, 1.0);
        state.on_base_install(&dag, obj(0), 8.0, t(1.0));
        assert_eq!(state.stale_count(), 3); // 0, 2, 3 (node 1 untouched)
        assert!(!state.is_stale(1));
        let r = state.apply(&dag, &store, 0, t(2.0)).unwrap();
        assert!(r.changed);
        // Node 0 fresh; 2 owns a cascade now; 3 transitively stale.
        assert!(!state.is_stale(0));
        assert!(state.is_stale(2) && state.is_stale(3));
        state.apply(&dag, &store, 2, t(3.0)).unwrap();
        assert!(state.is_stale(3) && !state.is_stale(2));
        state.apply(&dag, &store, 3, t(4.0)).unwrap();
        assert_eq!(state.stale_count(), 0);
    }

    #[test]
    fn unchanged_recompute_does_not_cascade() {
        let dag = diamond();
        let store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 100);
        // Install event with no store change (payload already 0): the
        // delta applies, the value is bit-identical, nothing cascades.
        state.on_base_install(&dag, obj(0), 0.0, t(1.0));
        let r = state.apply(&dag, &store, 0, t(2.0)).unwrap();
        assert!(!r.changed);
        assert_eq!(state.pending_len(), 0);
        assert_eq!(state.stale_count(), 0);
    }

    #[test]
    fn pending_closure_is_the_stale_ancestor_chain() {
        let dag = diamond();
        let mut store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 100);
        install(&mut store, 0, 8.0, 1.0);
        state.on_base_install(&dag, obj(0), 8.0, t(1.0));
        assert_eq!(state.pending_closure(&dag, 3), vec![0]);
        assert_eq!(state.pending_closure(&dag, 0), vec![0]);
        assert!(state.pending_closure(&dag, 1).is_empty());
        // Refreshing node 3 on demand: apply the closure repeatedly until
        // it drains (cascades re-populate it).
        loop {
            let closure = state.pending_closure(&dag, 3);
            if closure.is_empty() {
                break;
            }
            for n in closure {
                state.apply(&dag, &store, n, t(2.0));
            }
        }
        assert!(!state.is_stale(3));
        let oracle = full_recompute(&dag, &store);
        assert_eq!(state.value(3).to_bits(), oracle[3].to_bits());
        // Node 1's subtree was never touched — OD refreshes the closure,
        // not the world.
        assert!(!state.is_stale(1));
    }

    #[test]
    fn one_ascending_pass_over_the_stale_closure_quiesces_the_cone() {
        let dag = diamond();
        let mut store = Store::new(3, 0, 0, SimTime::ZERO);
        let mut state = DagState::new(&dag, &store, 100);
        install(&mut store, 0, 8.0, 1.0);
        state.on_base_install(&dag, obj(0), 8.0, t(1.0));
        // Node 0 is pending; 2 and 3 are only transitively stale, but the
        // refresh must still visit them for the in-cone cascades.
        assert_eq!(state.stale_closure(&dag, 3), vec![0, 2, 3]);
        for n in state.stale_closure(&dag, 3) {
            state.apply(&dag, &store, n, t(2.0));
        }
        assert!(!state.is_stale(3));
        assert_eq!(state.pending_len(), 0);
        let oracle = full_recompute(&dag, &store);
        assert_eq!(state.value(3).to_bits(), oracle[3].to_bits());
    }

    #[test]
    fn generated_dags_have_declared_shape() {
        let spec = DagSpec {
            depth: 4,
            width: 6,
            fanout: 3,
            ..DagSpec::default()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let dag = generate_dag(&spec, 20, 20, &mut rng);
        assert_eq!(dag.len(), 24);
        for node in dag.nodes() {
            assert_eq!(node.inputs.len(), 3);
        }
        // Anchor edges realise the declared depth.
        assert_eq!(dag.rank(23 - (23 % 6)), 3);
        let max_rank = (0..24).map(|n| dag.rank(n)).max().unwrap();
        assert_eq!(max_rank, 3);
        // Determinism: same seed, same graph.
        let mut rng2 = Xoshiro256pp::seed_from_u64(9);
        let dag2 = generate_dag(&spec, 20, 20, &mut rng2);
        assert_eq!(dag.nodes(), dag2.nodes());
    }
}
