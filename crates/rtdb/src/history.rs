//! Historical views (paper §2: "Historical views provide support for
//! maintaining not only the current attribute values of an object, but its
//! past values as well"; §7 lists them as future work — implemented here as
//! an extension).
//!
//! Every successful install appends `(generation_ts, payload)` to the
//! object's history ring. Retention is bounded both by age (values older
//! than `retention_secs` relative to the newest install are pruned) and by
//! a per-object entry cap. As-of queries return the value in force at a
//! requested past instant, or report a *miss* when the instant predates the
//! retained window.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

use crate::object::{Importance, ViewObjectId};

/// Retention policy for historical views.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoryPolicy {
    /// Keep values whose generation is within this window of the newest.
    pub retention_secs: f64,
    /// Hard cap on retained entries per object.
    pub max_entries_per_object: usize,
}

impl Default for HistoryPolicy {
    fn default() -> Self {
        HistoryPolicy {
            retention_secs: 60.0,
            max_entries_per_object: 256,
        }
    }
}

/// One retained version.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Version {
    /// Generation timestamp of the value at its external source.
    pub generation_ts: SimTime,
    /// The value.
    pub payload: f64,
}

/// Append-only, pruned per-object version chains for the view partitions.
///
/// # Example
///
/// ```
/// use strip_db::history::{HistoryPolicy, HistoryStore};
/// use strip_db::object::{Importance, ViewObjectId};
/// use strip_sim::time::SimTime;
///
/// let t = SimTime::from_secs;
/// let mut h = HistoryStore::new(HistoryPolicy::default(), 1, 0);
/// let obj = ViewObjectId::new(Importance::Low, 0);
/// h.record(obj, t(1.0), 100.0);
/// h.record(obj, t(5.0), 120.0);
/// // "What was the price at t = 3?"
/// assert_eq!(h.value_as_of(obj, t(3.0)).unwrap().payload, 100.0);
/// // Before the first retained version: a miss.
/// assert!(h.value_as_of(obj, t(0.5)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct HistoryStore {
    policy: HistoryPolicy,
    chains: [Vec<VecDeque<Version>>; 2],
    appends: u64,
    pruned: u64,
}

impl HistoryStore {
    /// Creates empty chains for `n_low` + `n_high` objects.
    #[must_use]
    pub fn new(policy: HistoryPolicy, n_low: u32, n_high: u32) -> Self {
        HistoryStore {
            policy,
            chains: [
                vec![VecDeque::new(); n_low as usize],
                vec![VecDeque::new(); n_high as usize],
            ],
            appends: 0,
            pruned: 0,
        }
    }

    fn chain(&self, id: ViewObjectId) -> &VecDeque<Version> {
        &self.chains[id.class.index()][id.index as usize]
    }

    fn chain_mut(&mut self, id: ViewObjectId) -> &mut VecDeque<Version> {
        &mut self.chains[id.class.index()][id.index as usize]
    }

    /// Records an installed value. Installs arrive in increasing generation
    /// order per object (the store's worthiness check guarantees it for
    /// snapshot objects), which keeps chains sorted.
    pub fn record(&mut self, id: ViewObjectId, generation_ts: SimTime, payload: f64) {
        let retention = self.policy.retention_secs;
        let cap = self.policy.max_entries_per_object;
        let mut pruned = 0u64;
        let chain = self.chain_mut(id);
        debug_assert!(
            chain
                .back()
                .is_none_or(|v| v.generation_ts <= generation_ts),
            "history appends must be generation-ordered"
        );
        chain.push_back(Version {
            generation_ts,
            payload,
        });
        // Prune by age relative to the newest generation, then by cap —
        // always keeping at least the newest entry.
        while chain.len() > 1
            && generation_ts.since(chain.front().expect("non-empty").generation_ts) > retention
        {
            chain.pop_front();
            pruned += 1;
        }
        while chain.len() > cap.max(1) {
            chain.pop_front();
            pruned += 1;
        }
        self.appends += 1;
        self.pruned += pruned;
    }

    /// The value in force at instant `t`: the newest version with
    /// `generation_ts <= t`. Returns `None` (a miss) when `t` predates the
    /// retained window or the chain is empty.
    #[must_use]
    pub fn value_as_of(&self, id: ViewObjectId, t: SimTime) -> Option<Version> {
        let chain = self.chain(id);
        let first = chain.front()?;
        if t < first.generation_ts {
            return None;
        }
        // Binary search for the last version with generation_ts <= t.
        let (a, b) = chain.as_slices();
        let full: &[Version];
        let joined;
        if b.is_empty() {
            full = a;
        } else {
            joined = chain.iter().copied().collect::<Vec<_>>();
            full = &joined;
        }
        let idx = full.partition_point(|v| v.generation_ts <= t);
        full.get(idx.wrapping_sub(1)).copied()
    }

    /// Number of retained versions for one object.
    #[must_use]
    pub fn chain_len(&self, id: ViewObjectId) -> usize {
        self.chain(id).len()
    }

    /// Total retained versions across all objects.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        Importance::ALL
            .iter()
            .map(|c| {
                self.chains[c.index()]
                    .iter()
                    .map(VecDeque::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total versions ever recorded.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total versions pruned by retention or cap.
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// The retention policy in force.
    #[must_use]
    pub fn policy(&self) -> HistoryPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn id() -> ViewObjectId {
        ViewObjectId::new(Importance::Low, 0)
    }

    fn store(retention: f64, cap: usize) -> HistoryStore {
        HistoryStore::new(
            HistoryPolicy {
                retention_secs: retention,
                max_entries_per_object: cap,
            },
            2,
            1,
        )
    }

    #[test]
    fn as_of_returns_value_in_force() {
        let mut h = store(100.0, 100);
        h.record(id(), t(1.0), 10.0);
        h.record(id(), t(3.0), 30.0);
        h.record(id(), t(5.0), 50.0);
        assert_eq!(h.value_as_of(id(), t(1.0)).unwrap().payload, 10.0);
        assert_eq!(h.value_as_of(id(), t(2.9)).unwrap().payload, 10.0);
        assert_eq!(h.value_as_of(id(), t(3.0)).unwrap().payload, 30.0);
        assert_eq!(h.value_as_of(id(), t(99.0)).unwrap().payload, 50.0);
    }

    #[test]
    fn queries_before_retained_window_miss() {
        let mut h = store(100.0, 100);
        h.record(id(), t(5.0), 50.0);
        assert!(h.value_as_of(id(), t(4.9)).is_none());
        assert!(h
            .value_as_of(ViewObjectId::new(Importance::High, 0), t(10.0))
            .is_none());
    }

    #[test]
    fn age_retention_prunes_old_versions() {
        let mut h = store(10.0, 100);
        h.record(id(), t(0.0), 1.0);
        h.record(id(), t(5.0), 2.0);
        h.record(id(), t(20.0), 3.0); // 0.0 and 5.0 are > 10 s older
        assert_eq!(h.chain_len(id()), 1);
        assert_eq!(h.pruned(), 2);
        assert!(h.value_as_of(id(), t(6.0)).is_none(), "pruned era misses");
        assert_eq!(h.value_as_of(id(), t(25.0)).unwrap().payload, 3.0);
    }

    #[test]
    fn cap_retention_prunes_oldest() {
        let mut h = store(1e9, 3);
        for i in 0..5 {
            h.record(id(), t(f64::from(i)), f64::from(i));
        }
        assert_eq!(h.chain_len(id()), 3);
        assert_eq!(h.value_as_of(id(), t(10.0)).unwrap().payload, 4.0);
        assert!(h.value_as_of(id(), t(1.0)).is_none());
        assert_eq!(h.appends(), 5);
        assert_eq!(h.pruned(), 2);
    }

    #[test]
    fn newest_entry_always_survives() {
        let mut h = store(0.5, 1);
        h.record(id(), t(0.0), 1.0);
        h.record(id(), t(100.0), 2.0);
        assert_eq!(h.chain_len(id()), 1);
        assert_eq!(h.value_as_of(id(), t(200.0)).unwrap().payload, 2.0);
    }

    #[test]
    fn total_entries_spans_objects() {
        let mut h = store(100.0, 100);
        h.record(id(), t(1.0), 1.0);
        h.record(ViewObjectId::new(Importance::Low, 1), t(1.0), 1.0);
        h.record(ViewObjectId::new(Importance::High, 0), t(1.0), 1.0);
        assert_eq!(h.total_entries(), 3);
    }
}
