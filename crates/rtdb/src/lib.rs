//! `strip-db` — the soft real-time main-memory database substrate for the
//! SIGMOD 1995 update-streams reproduction.
//!
//! This crate implements everything the paper's conceptual model (§3)
//! assumes underneath the scheduler:
//!
//! * [`object`] / [`store`] — the partitioned main-memory database: low- and
//!   high-importance snapshot *view* objects refreshed by the external
//!   update stream, plus *general* data read/written by transactions.
//! * [`update`] — external updates carrying generation timestamps.
//! * [`osqueue`] — the small kernel-space FIFO where arriving updates wait
//!   until the controller receives them (`OS_max`).
//! * [`shed`] — pluggable overflow shedding policies shared by both bounded
//!   queues (robustness extension).
//! * [`update_queue`] — the generation-ordered, bounded application-level
//!   update queue with FIFO/LIFO service, MA expiry discard, overflow
//!   discard, per-object lookup, and the hash-index/dedup extension.
//! * [`staleness`] — Maximum Age, Unapplied Update and combined staleness
//!   criteria with exact time-weighted `fold` accounting.
//! * [`history`] — historical views (paper §2/§7 extension): per-object
//!   version chains with age/cap retention and as-of queries.
//! * [`triggers`] — update-triggered rules maintaining derived general data
//!   (paper §7 extension).
//! * [`dag`] — derived-view DAGs maintained by incremental delta
//!   propagation with transitive staleness (ROADMAP item 3).
//! * [`cost`] — the instruction-count CPU cost model of Table 3.
//!
//! The scheduler itself (the paper's contribution) lives in `strip-core`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod dag;
pub mod history;
pub mod object;
pub mod osqueue;
pub mod shed;
pub mod staleness;
pub mod store;
pub mod triggers;
pub mod update;
pub mod update_queue;

pub use cost::CostModel;
pub use dag::{DagSpec, DagState, ViewDag};
pub use history::{HistoryPolicy, HistoryStore, Version};
pub use object::{Importance, ViewObject, ViewObjectId};
pub use osqueue::{Delivery, OsQueue};
pub use shed::ShedPolicy;
pub use staleness::{ExpiryWatch, StalenessSpec, StalenessTracker};
pub use store::{InstallOutcome, Store};
pub use triggers::{Rule, RuleSet};
pub use update::Update;
pub use update_queue::{InsertOutcome, UpdateQueue};
