//! Database objects and their identifiers.
//!
//! The database is partitioned (paper §3.2) into *view* data — refreshed
//! only by the external update stream, read-only for transactions — and
//! *general* data — read and written only by transactions. View data is
//! further split into a **low-importance** and a **high-importance** group;
//! low-value transactions read the former, high-value transactions the
//! latter, and updates carry the importance of the object they refresh.

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

/// The importance class of a view object (and of transactions/updates that
/// touch it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Importance {
    /// Low-importance view data, read by low-value transactions.
    Low,
    /// High-importance view data, read by high-value transactions.
    High,
}

impl Importance {
    /// Both classes, in a fixed order (useful for per-class accounting).
    pub const ALL: [Importance; 2] = [Importance::Low, Importance::High];

    /// Index for per-class arrays: Low = 0, High = 1.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Importance::Low => 0,
            Importance::High => 1,
        }
    }

    /// Inverse of [`Importance::index`], for decoding wire formats.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Option<Importance> {
        match index {
            0 => Some(Importance::Low),
            1 => Some(Importance::High),
            _ => None,
        }
    }
}

/// Identifier of a view object: importance class plus index within the
/// class's partition (`0..N_low` or `0..N_high`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ViewObjectId {
    /// Which partition the object lives in.
    pub class: Importance,
    /// Index within the partition.
    pub index: u32,
}

impl ViewObjectId {
    /// Convenience constructor.
    #[must_use]
    pub fn new(class: Importance, index: u32) -> Self {
        ViewObjectId { class, index }
    }
}

/// A snapshot view object: the current externally sourced value, the
/// generation timestamp of that value at its external source, and a local
/// version counter used to invalidate stale-expiry watchdogs.
///
/// An object may carry multiple *attributes* (the partial-update extension,
/// paper §2): each attribute then has its own generation timestamp, and
/// `generation_ts` is the **minimum** over attributes — the age that the
/// Maximum Age criterion cares about, since an object is up to date only
/// when every attribute is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewObject {
    /// Current payload (e.g. a price). The simulator carries a real payload
    /// so that install paths move actual data, not just timestamps.
    pub payload: f64,
    /// Generation timestamp of the installed value — for multi-attribute
    /// objects, the oldest attribute's generation.
    pub generation_ts: SimTime,
    /// Monotonic install counter; bumped on every install.
    pub version: u64,
    /// Per-attribute generation timestamps; empty for single-attribute
    /// objects (the paper's model).
    attr_gens: Vec<SimTime>,
}

impl ViewObject {
    /// Creates a single-attribute object whose current value was generated
    /// at `generation_ts`.
    #[must_use]
    pub fn new(payload: f64, generation_ts: SimTime) -> Self {
        ViewObject {
            payload,
            generation_ts,
            version: 0,
            attr_gens: Vec::new(),
        }
    }

    /// Creates an object with `attrs` attributes, all generated at
    /// `generation_ts`.
    #[must_use]
    pub fn with_attrs(payload: f64, generation_ts: SimTime, attrs: u32) -> Self {
        let attr_gens = if attrs <= 1 {
            Vec::new()
        } else {
            vec![generation_ts; attrs as usize]
        };
        ViewObject {
            payload,
            generation_ts,
            version: 0,
            attr_gens,
        }
    }

    /// Rebuilds an object from persisted state: the payload, the install
    /// version counter, and every attribute's generation timestamp (one
    /// entry for the paper's single-attribute model). `generation_ts` is
    /// re-derived as the minimum attribute generation, exactly as
    /// [`ViewObject::apply`] maintains it. An empty `attr_generations` is
    /// treated as a single attribute at `SimTime::ZERO` (a decoder should
    /// never produce it, but restore must not panic on hostile input).
    #[must_use]
    pub fn restore(payload: f64, version: u64, attr_generations: Vec<SimTime>) -> Self {
        let generation_ts = attr_generations
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO);
        let attr_gens = if attr_generations.len() <= 1 {
            Vec::new()
        } else {
            attr_generations
        };
        ViewObject {
            payload,
            generation_ts,
            version,
            attr_gens,
        }
    }

    /// Number of attributes (1 for the paper's single-attribute model).
    #[must_use]
    pub fn attr_count(&self) -> u32 {
        if self.attr_gens.is_empty() {
            1
        } else {
            self.attr_gens.len() as u32
        }
    }

    /// Generation timestamp of one attribute.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    #[must_use]
    pub fn attr_generation(&self, attr: u32) -> SimTime {
        if self.attr_gens.is_empty() {
            assert_eq!(attr, 0, "single-attribute object");
            self.generation_ts
        } else {
            self.attr_gens[attr as usize]
        }
    }

    /// Applies a value generated at `gen` covering the attributes in
    /// `mask`. Returns `true` if any covered attribute advanced (the
    /// worthiness check of paper §3.3); on advance the version is bumped
    /// and `generation_ts` re-derived as the minimum attribute generation.
    pub fn apply(&mut self, gen: SimTime, payload: f64, mask: u64) -> bool {
        if self.attr_gens.is_empty() {
            if gen <= self.generation_ts {
                return false;
            }
            self.generation_ts = gen;
            self.payload = payload;
            self.version += 1;
            return true;
        }
        let mut advanced = false;
        for (i, ag) in self.attr_gens.iter_mut().enumerate() {
            if i < 64 && (mask >> i) & 1 == 1 && gen > *ag {
                *ag = gen;
                advanced = true;
            }
        }
        if advanced {
            self.payload = payload;
            self.generation_ts = self
                .attr_gens
                .iter()
                .copied()
                .min()
                .expect("non-empty attr_gens");
            self.version += 1;
        }
        advanced
    }

    /// Age of the installed value at time `now` (seconds). For
    /// multi-attribute objects this is the age of the *oldest* attribute.
    #[inline]
    #[must_use]
    pub fn age_at(&self, now: SimTime) -> f64 {
        now.since(self.generation_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_indices_are_stable() {
        assert_eq!(Importance::Low.index(), 0);
        assert_eq!(Importance::High.index(), 1);
        assert_eq!(Importance::ALL.len(), 2);
        for class in Importance::ALL {
            assert_eq!(Importance::from_index(class.index()), Some(class));
        }
        assert_eq!(Importance::from_index(2), None);
    }

    #[test]
    fn view_object_age() {
        let o = ViewObject::new(1.0, SimTime::from_secs(2.0));
        assert_eq!(o.age_at(SimTime::from_secs(5.0)), 3.0);
        assert_eq!(o.version, 0);
        assert_eq!(o.attr_count(), 1);
        assert_eq!(o.attr_generation(0), SimTime::from_secs(2.0));
    }

    #[test]
    fn single_attribute_apply_is_worthiness_checked() {
        let mut o = ViewObject::new(0.0, SimTime::from_secs(1.0));
        assert!(!o.apply(SimTime::from_secs(0.5), 9.0, u64::MAX));
        assert_eq!(o.payload, 0.0);
        assert!(o.apply(SimTime::from_secs(2.0), 9.0, u64::MAX));
        assert_eq!(o.payload, 9.0);
        assert_eq!(o.version, 1);
    }

    #[test]
    fn partial_apply_tracks_minimum_generation() {
        let mut o = ViewObject::with_attrs(0.0, SimTime::from_secs(0.0), 3);
        assert_eq!(o.attr_count(), 3);
        // Refresh attribute 0 only: min generation stays at 0.
        assert!(o.apply(SimTime::from_secs(5.0), 1.0, 0b001));
        assert_eq!(o.generation_ts, SimTime::from_secs(0.0));
        assert_eq!(o.attr_generation(0), SimTime::from_secs(5.0));
        // Refresh the remaining two: min generation advances.
        assert!(o.apply(SimTime::from_secs(6.0), 2.0, 0b110));
        assert_eq!(o.generation_ts, SimTime::from_secs(5.0));
        // A partial update covering only already-newer attributes is
        // superseded.
        assert!(!o.apply(SimTime::from_secs(4.0), 3.0, 0b001));
        assert_eq!(o.version, 2);
    }

    #[test]
    fn complete_apply_on_multi_attribute_object() {
        let mut o = ViewObject::with_attrs(0.0, SimTime::from_secs(0.0), 4);
        assert!(o.apply(SimTime::from_secs(3.0), 1.0, u64::MAX));
        assert_eq!(o.generation_ts, SimTime::from_secs(3.0));
        for a in 0..4 {
            assert_eq!(o.attr_generation(a), SimTime::from_secs(3.0));
        }
    }

    #[test]
    fn restore_rederives_min_generation() {
        let o = ViewObject::restore(
            3.5,
            7,
            vec![SimTime::from_secs(2.0), SimTime::from_secs(1.0)],
        );
        assert_eq!(o.version, 7);
        assert_eq!(o.payload, 3.5);
        assert_eq!(o.generation_ts, SimTime::from_secs(1.0));
        assert_eq!(o.attr_count(), 2);
        assert_eq!(o.attr_generation(0), SimTime::from_secs(2.0));
        let single = ViewObject::restore(1.0, 2, vec![SimTime::from_secs(5.0)]);
        assert_eq!(single.attr_count(), 1);
        assert_eq!(single.generation_ts, SimTime::from_secs(5.0));
        // Hostile input: no attribute generations at all.
        let empty = ViewObject::restore(0.0, 0, Vec::new());
        assert_eq!(empty.generation_ts, SimTime::ZERO);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = ViewObjectId::new(Importance::Low, 3);
        let b = ViewObjectId::new(Importance::High, 3);
        assert!(a < b);
        let mut s = HashSet::new();
        s.insert(a);
        s.insert(b);
        s.insert(a);
        assert_eq!(s.len(), 2);
    }
}
