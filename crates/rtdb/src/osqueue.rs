//! The bounded operating-system message queue (paper §3.3).
//!
//! Arriving updates are buffered by the OS until the controller actively
//! receives them. The OS queue lives in kernel space, is small (`OS_max`),
//! and only supports FIFO receive of the next message — it cannot be
//! searched or reordered, which is why the algorithms that defer updates
//! also maintain the application-level update queue.
//!
//! Overflow behaviour is pluggable (robustness extension): the paper's
//! kernel rejects the arriving message ([`ShedPolicy::DropNewest`], the
//! default), but a smarter receive-side daemon could instead evict a
//! buffered message to admit the arrival. Either way exactly one update is
//! lost per overflow event, so `dropped` counts overflow events regardless
//! of policy.

use std::collections::{BTreeMap, VecDeque};

use strip_sim::time::SimTime;

use crate::object::{Importance, ViewObjectId};
use crate::shed::ShedPolicy;
use crate::update::Update;

/// Outcome of [`OsQueue::deliver`] on a full queue: either the arrival was
/// rejected (`accepted == false`) or a buffered message was evicted to make
/// room (`displaced`). At most one of the two loss modes occurs per call.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The arriving update entered the buffer.
    pub accepted: bool,
    /// A previously buffered update evicted to admit the arrival.
    pub displaced: Option<Update>,
}

impl Delivery {
    /// True when the call lost an update (the arrival or a buffered one).
    #[must_use]
    pub fn lost_one(&self) -> bool {
        !self.accepted || self.displaced.is_some()
    }
}

/// Bounded FIFO of arrived-but-unreceived updates.
#[derive(Debug, Clone)]
pub struct OsQueue {
    buf: VecDeque<Update>,
    capacity: usize,
    shed: ShedPolicy,
    dropped: u64,
}

impl OsQueue {
    /// Creates a queue bounded at `capacity` messages with the paper's
    /// overflow rule (reject the arrival).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        OsQueue::with_shed(capacity, ShedPolicy::DropNewest)
    }

    /// Creates a queue bounded at `capacity` messages with an explicit
    /// overflow shedding policy.
    #[must_use]
    pub fn with_shed(capacity: usize, shed: ShedPolicy) -> Self {
        OsQueue {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            shed,
            dropped: 0,
        }
    }

    /// Delivers an arriving update. On overflow the shedding policy decides
    /// whether the arrival is rejected or a buffered message is evicted;
    /// either way one drop is counted.
    pub fn deliver(&mut self, update: Update) -> Delivery {
        if self.buf.len() < self.capacity {
            self.buf.push_back(update);
            return Delivery {
                accepted: true,
                displaced: None,
            };
        }
        self.dropped += 1;
        match self.shed {
            ShedPolicy::DropNewest => Delivery {
                accepted: false,
                displaced: None,
            },
            ShedPolicy::DropOldest => self.admit_evicting(0, update),
            ShedPolicy::DropLowestImportance => {
                if let Some(i) = self
                    .buf
                    .iter()
                    .position(|u| u.object.class == Importance::Low)
                {
                    self.admit_evicting(i, update)
                } else if update.object.class == Importance::Low {
                    // Only high-importance messages buffered and a
                    // low-importance arrival: the arrival is the victim.
                    Delivery {
                        accepted: false,
                        displaced: None,
                    }
                } else {
                    self.admit_evicting(0, update)
                }
            }
            ShedPolicy::CoalescePerObject => {
                let i = self.superseded_index(&update).unwrap_or(0);
                self.admit_evicting(i, update)
            }
        }
    }

    /// Evicts the message at `index` and appends `update`.
    fn admit_evicting(&mut self, index: usize, update: Update) -> Delivery {
        let victim = self.buf.remove(index);
        self.buf.push_back(update);
        Delivery {
            accepted: true,
            displaced: victim,
        }
    }

    /// Index of the oldest buffered message superseded by a newer buffered
    /// message (or by `arrival`) for the same object. One O(len) pass: walk
    /// back-to-front tracking the newest generation seen per object, and
    /// report the frontmost superseded entry.
    fn superseded_index(&self, arrival: &Update) -> Option<usize> {
        let mut newest: BTreeMap<ViewObjectId, SimTime> = BTreeMap::new();
        newest.insert(arrival.object, arrival.generation_ts);
        let mut best: Option<usize> = None;
        for (i, u) in self.buf.iter().enumerate().rev() {
            if newest.get(&u.object).is_some_and(|g| *g >= u.generation_ts) {
                best = Some(i);
            }
            let entry = newest.entry(u.object).or_insert(u.generation_ts);
            if u.generation_ts > *entry {
                *entry = u.generation_ts;
            }
        }
        best
    }

    /// Receives the next message in arrival order.
    pub fn receive(&mut self) -> Option<Update> {
        self.buf.pop_front()
    }

    /// Number of buffered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no messages are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Overflow events (one update lost each).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Importance, ViewObjectId};
    use strip_sim::time::SimTime;

    fn upd(seq: u64) -> Update {
        upd_on(seq, Importance::Low, 0)
    }

    fn upd_on(seq: u64, class: Importance, index: u32) -> Update {
        Update {
            seq,
            object: ViewObjectId::new(class, index),
            generation_ts: SimTime::from_secs(seq as f64),
            arrival_ts: SimTime::from_secs(seq as f64),
            payload: 0.0,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = OsQueue::new(10);
        for i in 0..5 {
            assert!(q.deliver(upd(i)).accepted);
        }
        for i in 0..5 {
            assert_eq!(q.receive().unwrap().seq, i);
        }
        assert!(q.receive().is_none());
    }

    #[test]
    fn overflow_drops_arrivals() {
        let mut q = OsQueue::new(2);
        assert!(q.deliver(upd(0)).accepted);
        assert!(q.deliver(upd(1)).accepted);
        let lost = q.deliver(upd(2));
        assert!(!lost.accepted);
        assert!(lost.displaced.is_none());
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
        // Receiving frees a slot.
        q.receive();
        assert!(q.deliver(upd(3)).accepted);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn empty_flags() {
        let mut q = OsQueue::new(1);
        assert!(q.is_empty());
        q.deliver(upd(0));
        assert!(!q.is_empty());
    }

    #[test]
    fn drop_oldest_displaces_front() {
        let mut q = OsQueue::with_shed(2, ShedPolicy::DropOldest);
        q.deliver(upd(0));
        q.deliver(upd(1));
        let out = q.deliver(upd(2));
        assert!(out.accepted);
        assert_eq!(out.displaced.unwrap().seq, 0);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.receive().unwrap().seq, 1);
        assert_eq!(q.receive().unwrap().seq, 2);
    }

    #[test]
    fn drop_lowest_importance_protects_high() {
        let mut q = OsQueue::with_shed(2, ShedPolicy::DropLowestImportance);
        q.deliver(upd_on(0, Importance::High, 0));
        q.deliver(upd_on(1, Importance::Low, 1));
        // A high arrival evicts the buffered low message.
        let out = q.deliver(upd_on(2, Importance::High, 2));
        assert_eq!(out.displaced.unwrap().seq, 1);
        // All-high buffer + low arrival: the arrival is rejected.
        let out = q.deliver(upd_on(3, Importance::Low, 3));
        assert!(!out.accepted);
        // All-high buffer + high arrival: oldest high is evicted.
        let out = q.deliver(upd_on(4, Importance::High, 4));
        assert_eq!(out.displaced.unwrap().seq, 0);
        assert_eq!(q.dropped(), 3);
    }

    #[test]
    fn coalesce_evicts_superseded_first() {
        let mut q = OsQueue::with_shed(3, ShedPolicy::CoalescePerObject);
        q.deliver(upd_on(0, Importance::Low, 7)); // superseded by seq 2
        q.deliver(upd_on(1, Importance::Low, 8));
        q.deliver(upd_on(2, Importance::Low, 7));
        let out = q.deliver(upd_on(3, Importance::Low, 9));
        assert_eq!(out.displaced.unwrap().seq, 0);
        // No superseded entry left: falls back to the oldest.
        let out = q.deliver(upd_on(4, Importance::Low, 10));
        assert_eq!(out.displaced.unwrap().seq, 1);
        // The arrival itself can supersede a buffered message.
        let out = q.deliver(upd_on(5, Importance::Low, 9));
        assert_eq!(out.displaced.unwrap().seq, 3);
    }
}
