//! The bounded operating-system message queue (paper §3.3).
//!
//! Arriving updates are buffered by the OS until the controller actively
//! receives them. The OS queue lives in kernel space, is small (`OS_max`),
//! and only supports FIFO receive of the next message — it cannot be
//! searched or reordered, which is why the algorithms that defer updates
//! also maintain the application-level update queue.

use std::collections::VecDeque;

use crate::update::Update;

/// Bounded FIFO of arrived-but-unreceived updates.
#[derive(Debug, Clone)]
pub struct OsQueue {
    buf: VecDeque<Update>,
    capacity: usize,
    dropped: u64,
}

impl OsQueue {
    /// Creates a queue bounded at `capacity` messages.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        OsQueue {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Delivers an arriving update. Returns `false` (and counts a drop) if
    /// the queue is full — the kernel discards the message.
    pub fn deliver(&mut self, update: Update) -> bool {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.buf.push_back(update);
        true
    }

    /// Receives the next message in arrival order.
    pub fn receive(&mut self) -> Option<Update> {
        self.buf.pop_front()
    }

    /// Number of buffered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no messages are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Messages dropped due to overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Importance, ViewObjectId};
    use strip_sim::time::SimTime;

    fn upd(seq: u64) -> Update {
        Update {
            seq,
            object: ViewObjectId::new(Importance::Low, 0),
            generation_ts: SimTime::from_secs(seq as f64),
            arrival_ts: SimTime::from_secs(seq as f64),
            payload: 0.0,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = OsQueue::new(10);
        for i in 0..5 {
            assert!(q.deliver(upd(i)));
        }
        for i in 0..5 {
            assert_eq!(q.receive().unwrap().seq, i);
        }
        assert!(q.receive().is_none());
    }

    #[test]
    fn overflow_drops_arrivals() {
        let mut q = OsQueue::new(2);
        assert!(q.deliver(upd(0)));
        assert!(q.deliver(upd(1)));
        assert!(!q.deliver(upd(2)));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
        // Receiving frees a slot.
        q.receive();
        assert!(q.deliver(upd(3)));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn empty_flags() {
        let mut q = OsQueue::new(1);
        assert!(q.is_empty());
        q.deliver(upd(0));
        assert!(!q.is_empty());
    }
}
