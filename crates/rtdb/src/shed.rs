//! Load-shedding policies for the bounded queues (robustness extension).
//!
//! The paper bounds both queues (`OS_max`, `UQ_max`) and prescribes one
//! overflow reaction each: the OS queue rejects the arriving message
//! (§3.3), the update queue discards its oldest update (§4.2). Under
//! disturbed streams — catch-up floods after an outage, sustained bursts —
//! *which* update is sacrificed decides how staleness degrades, so the
//! overflow reaction is generalised into a pluggable [`ShedPolicy`] shared
//! by both queues. The paper's defaults remain the defaults.

use serde::{Deserialize, Serialize};

/// Which update a full queue sacrifices when a new one arrives.
///
/// Every variant still sheds exactly one update per overflow event, so the
/// conservation law `installed + superseded + expired + overflow + dedup +
/// dropped + left + in-flight == arrived` holds for all of them (see the
/// shedding property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Reject the newest update — the arrival itself for the FIFO OS queue,
    /// the newest *generation* for the generation-ordered update queue.
    /// This is the OS queue's behaviour in the paper (§3.3: the kernel
    /// discards the message).
    DropNewest,
    /// Evict the oldest update. This is the paper's update-queue overflow
    /// rule (§4.2) — the oldest generation is the closest to expiring
    /// anyway.
    DropOldest,
    /// Evict the oldest *low-importance* update; fall back to the oldest
    /// overall when only high-importance updates are queued. Extends the
    /// paper's two-level importance split (§3.2) to overflow decisions:
    /// high-importance freshness is protected while the flood lasts.
    DropLowestImportance,
    /// Evict the oldest update that is already superseded by a newer queued
    /// update for the same object (its install would be wasted work); fall
    /// back to the oldest overall when every queued update is its object's
    /// newest. A lazy, overflow-time version of the hash-index dedup
    /// extension (§4.2/§4.4).
    CoalescePerObject,
}

impl ShedPolicy {
    /// Short label used in figure series.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ShedPolicy::DropNewest => "drop-newest",
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::DropLowestImportance => "drop-low-imp",
            ShedPolicy::CoalescePerObject => "coalesce",
        }
    }

    /// All policies, in documentation order (used by sweeps).
    pub const ALL: [ShedPolicy; 4] = [
        ShedPolicy::DropNewest,
        ShedPolicy::DropOldest,
        ShedPolicy::DropLowestImportance,
        ShedPolicy::CoalescePerObject,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ShedPolicy::ALL.iter().map(ShedPolicy::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ShedPolicy::ALL.len());
    }
}
