//! Staleness definitions and exact time-weighted staleness accounting
//! (paper §2 and §3.5).
//!
//! Two criteria are modelled:
//!
//! * **Maximum Age (MA)** — an object is stale when the *generation* age of
//!   its installed value exceeds `alpha`. Even an object whose true value
//!   never changes goes stale unless it is periodically refreshed.
//! * **Unapplied Update (UU)** — an object is optimistically fresh unless an
//!   update for it has been received by the system but not yet applied.
//!   Following the paper's observation that discarding queued updates "can
//!   cause data to become stale", we track *newest received generation vs.
//!   installed generation*: dropping an update from the queue leaves the
//!   object stale until a newer update is installed. (The strict
//!   queue-presence reading would absurdly make drops freshen data.)
//!
//! The trackers are *metric observers*: they maintain the exact
//! time-weighted stale counts from which `fold_l` and `fold_h` are computed.
//! The in-system behavioural checks (a timestamp compare for MA, an update
//! queue scan for UU) are performed by the controller and charged to the CPU
//! via the cost model; the MA behavioural check and the MA metric coincide,
//! while the UU metric is omniscient about drops that the in-system queue
//! scan can no longer see.

use serde::{Deserialize, Serialize};
use strip_sim::stats::TimeWeighted;
use strip_sim::time::SimTime;

use crate::object::{Importance, ViewObjectId};

/// Which staleness criterion a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StalenessSpec {
    /// Maximum Age with threshold `alpha` seconds (generation-time based).
    MaxAge {
        /// Maximum tolerated generation age in seconds (the paper's α).
        alpha: f64,
    },
    /// Unapplied Update.
    UnappliedUpdate,
    /// Combined criterion (paper §2: "an object would be considered stale
    /// if it were stale under either definition").
    Either {
        /// The MA component's maximum age in seconds.
        alpha: f64,
    },
}

impl StalenessSpec {
    /// The maximum-age threshold, if the criterion has an MA component.
    #[must_use]
    pub fn alpha(&self) -> Option<f64> {
        match self {
            StalenessSpec::MaxAge { alpha } | StalenessSpec::Either { alpha } => Some(*alpha),
            StalenessSpec::UnappliedUpdate => None,
        }
    }

    /// True if the criterion has an Unapplied Update component.
    #[must_use]
    pub fn tracks_unapplied(&self) -> bool {
        matches!(
            self,
            StalenessSpec::UnappliedUpdate | StalenessSpec::Either { .. }
        )
    }
}

/// A request to fire a staleness-expiry watchdog: under MA, the value
/// installed into `object` becomes stale at `at` unless something newer is
/// installed first (checked via `version`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpiryWatch {
    /// Object to re-examine.
    pub object: ViewObjectId,
    /// Version counter of the install this watchdog guards.
    pub version: u64,
    /// When the installed value exceeds the maximum age.
    pub at: SimTime,
}

#[derive(Debug, Clone)]
struct ObjState {
    /// The installed value's age exceeds the MA threshold.
    ma_stale: bool,
    /// A received update newer than the installed value is unapplied.
    uu_stale: bool,
    /// MA: version of the currently installed value.
    version: u64,
    /// UU: newest generation received by the system for this object.
    received_gen: SimTime,
    /// Generation of the installed value.
    installed_gen: SimTime,
}

impl ObjState {
    fn combined(&self, spec: StalenessSpec) -> bool {
        match spec {
            StalenessSpec::MaxAge { .. } => self.ma_stale,
            StalenessSpec::UnappliedUpdate => self.uu_stale,
            StalenessSpec::Either { .. } => self.ma_stale || self.uu_stale,
        }
    }
}

/// Exact per-class staleness accounting for either criterion.
///
/// # Example
///
/// ```
/// use strip_db::object::{Importance, ViewObjectId};
/// use strip_db::staleness::{StalenessSpec, StalenessTracker};
/// use strip_sim::time::SimTime;
///
/// let t = SimTime::from_secs;
/// let mut tracker = StalenessTracker::new(
///     StalenessSpec::UnappliedUpdate, 2, 0, SimTime::ZERO, |_| SimTime::ZERO,
/// );
/// let obj = ViewObjectId::new(Importance::Low, 0);
/// tracker.on_receive(obj, t(1.0), t(1.0));   // update received, unapplied
/// assert!(tracker.is_stale(obj));
/// tracker.on_install(obj, t(1.0), 1, t(3.0)); // installed two seconds later
/// assert!(!tracker.is_stale(obj));
/// // fold over [0, 4]: one of two objects stale during [1, 3].
/// assert!((tracker.fold(Importance::Low, t(4.0)) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StalenessTracker {
    spec: StalenessSpec,
    objs: [Vec<ObjState>; 2],
    stale_counts: [TimeWeighted; 2],
    start: SimTime,
}

impl StalenessTracker {
    /// Creates a tracker for `n_low` + `n_high` view objects whose initial
    /// generation timestamps are given by `init_gen`. Statistics accumulate
    /// from `start`.
    #[must_use]
    pub fn new<F>(
        spec: StalenessSpec,
        n_low: u32,
        n_high: u32,
        start: SimTime,
        mut init_gen: F,
    ) -> Self
    where
        F: FnMut(ViewObjectId) -> SimTime,
    {
        let build = |class: Importance, n: u32, init_gen: &mut F| -> Vec<ObjState> {
            (0..n)
                .map(|i| {
                    let gen = init_gen(ViewObjectId::new(class, i));
                    let ma_stale = spec.alpha().is_some_and(|alpha| start.since(gen) > alpha);
                    ObjState {
                        ma_stale,
                        uu_stale: false,
                        version: 0,
                        received_gen: gen,
                        installed_gen: gen,
                    }
                })
                .collect()
        };
        let low = build(Importance::Low, n_low, &mut init_gen);
        let high = build(Importance::High, n_high, &mut init_gen);
        let stale_low = low.iter().filter(|o| o.combined(spec)).count() as f64;
        let stale_high = high.iter().filter(|o| o.combined(spec)).count() as f64;
        StalenessTracker {
            spec,
            objs: [low, high],
            stale_counts: [
                TimeWeighted::new(start, stale_low),
                TimeWeighted::new(start, stale_high),
            ],
            start,
        }
    }

    /// The criterion in force.
    #[must_use]
    pub fn spec(&self) -> StalenessSpec {
        self.spec
    }

    fn obj_mut(&mut self, id: ViewObjectId) -> &mut ObjState {
        &mut self.objs[id.class.index()][id.index as usize]
    }

    fn obj(&self, id: ViewObjectId) -> &ObjState {
        &self.objs[id.class.index()][id.index as usize]
    }

    /// Applies flag changes, updating the time-weighted stale count when
    /// the combined verdict flips.
    fn set_flags(&mut self, id: ViewObjectId, now: SimTime, ma: Option<bool>, uu: Option<bool>) {
        let spec = self.spec;
        let st = self.obj_mut(id);
        let before = st.combined(spec);
        if let Some(v) = ma {
            st.ma_stale = v;
        }
        if let Some(v) = uu {
            st.uu_stale = v;
        }
        let after = st.combined(spec);
        if before != after {
            let delta = if after { 1.0 } else { -1.0 };
            self.stale_counts[id.class.index()].add(now, delta);
        }
    }

    /// Expiry watchdogs for the initial (pre-simulation) values under MA.
    /// Under UU returns an empty vector.
    #[must_use]
    pub fn initial_watches(&self) -> Vec<ExpiryWatch> {
        let Some(alpha) = self.spec.alpha() else {
            return Vec::new();
        };
        let mut watches = Vec::new();
        for class in Importance::ALL {
            for (i, st) in self.objs[class.index()].iter().enumerate() {
                if !st.ma_stale {
                    watches.push(ExpiryWatch {
                        object: ViewObjectId::new(class, i as u32),
                        version: 0,
                        at: st.installed_gen + alpha,
                    });
                }
            }
        }
        watches
    }

    /// Records that the system received (was handed) an update for `object`
    /// generated at `gen`. Only meaningful under UU; a no-op under MA.
    pub fn on_receive(&mut self, object: ViewObjectId, gen: SimTime, now: SimTime) {
        if !self.spec.tracks_unapplied() {
            return;
        }
        let st = self.obj_mut(object);
        if gen > st.received_gen {
            st.received_gen = gen;
        }
        if self.obj(object).received_gen > self.obj(object).installed_gen {
            self.set_flags(object, now, None, Some(true));
        }
    }

    /// Records that a value generated at `gen` with store version `version`
    /// was installed into `object` at `now`. Returns the expiry watchdog to
    /// schedule (MA only).
    pub fn on_install(
        &mut self,
        object: ViewObjectId,
        gen: SimTime,
        version: u64,
        now: SimTime,
    ) -> Option<ExpiryWatch> {
        // UU component: a generation at least as new as everything received
        // clears the unapplied flag.
        let mut uu_flag = None;
        if self.spec.tracks_unapplied() {
            let st = self.obj_mut(object);
            if gen > st.installed_gen {
                st.installed_gen = gen;
            }
            if st.installed_gen >= st.received_gen {
                uu_flag = Some(false);
            }
        }
        // MA component: the new value is fresh until `gen + alpha`.
        let mut watch = None;
        let mut ma_flag = None;
        if let Some(alpha) = self.spec.alpha() {
            let st = self.obj_mut(object);
            st.version = version;
            if gen > st.installed_gen {
                st.installed_gen = gen;
            }
            let expires = gen + alpha;
            if expires > now {
                ma_flag = Some(false);
                watch = Some(ExpiryWatch {
                    object,
                    version,
                    at: expires,
                });
            } else {
                // Installing an already-expired value (possible under FIFO
                // with very old queued updates).
                ma_flag = Some(true);
            }
        } else {
            // Pure UU: still record the installed generation.
            let st = self.obj_mut(object);
            if gen > st.installed_gen {
                st.installed_gen = gen;
            }
        }
        self.set_flags(object, now, ma_flag, uu_flag);
        watch
    }

    /// Fires an expiry watchdog (MA): if the guarded value is still the
    /// installed one, the object becomes stale.
    pub fn on_expiry(&mut self, watch: ExpiryWatch, now: SimTime) {
        if self.spec.alpha().is_none() {
            return;
        }
        if self.obj(watch.object).version == watch.version {
            self.set_flags(watch.object, now, Some(true), None);
        }
    }

    /// Whether `object` is stale right now under the tracked criterion
    /// (metric view; see module docs for the UU system-visible distinction).
    #[must_use]
    pub fn is_stale(&self, object: ViewObjectId) -> bool {
        self.obj(object).combined(self.spec)
    }

    /// Current number of stale objects in `class`.
    #[must_use]
    pub fn stale_count(&self, class: Importance) -> f64 {
        self.stale_counts[class.index()].current()
    }

    /// The paper's `fold` for `class`: the time-weighted average fraction of
    /// stale objects over `[start, end]`.
    #[must_use]
    pub fn fold(&self, class: Importance, end: SimTime) -> f64 {
        let n = self.objs[class.index()].len();
        if n == 0 {
            return 0.0;
        }
        self.stale_counts[class.index()].mean_over(self.start, end) / n as f64
    }

    /// The raw integral of the stale count for `class` from the start of
    /// tracking through `at` (object-seconds). Used by callers that exclude
    /// a warm-up prefix: `fold over [w, end]` is
    /// `(integral(end) - integral(w)) / (N · (end - w))`.
    #[must_use]
    pub fn stale_count_integral(&self, class: Importance, at: SimTime) -> f64 {
        self.stale_counts[class.index()].integral_through(at)
    }

    /// Number of tracked objects in `class`.
    #[must_use]
    pub fn class_len(&self, class: Importance) -> usize {
        self.objs[class.index()].len()
    }
}

/// Exact time-weighted *transitive* staleness accounting over a
/// derived-view DAG (`fold_derived`).
///
/// The behavioural definition lives in [`crate::dag::DagState`]: a node is
/// stale iff it has an unapplied delta or any derived input is stale. This
/// observer only integrates that count over time; the controller calls
/// [`DerivedStaleness::observe`] after every propagation event, and the
/// fold is the time-weighted average fraction of stale nodes — the DAG
/// twin of the paper's `fold_l`/`fold_h`.
#[derive(Debug, Clone)]
pub struct DerivedStaleness {
    count: TimeWeighted,
    last: f64,
    n: usize,
    start: SimTime,
}

impl DerivedStaleness {
    /// Tracker over `n_nodes` derived nodes, all initially fresh,
    /// accumulating from `start`.
    #[must_use]
    pub fn new(n_nodes: usize, start: SimTime) -> Self {
        DerivedStaleness {
            count: TimeWeighted::new(start, 0.0),
            last: 0.0,
            n: n_nodes,
            start,
        }
    }

    /// Records that `stale` nodes are stale as of `now`.
    pub fn observe(&mut self, now: SimTime, stale: u32) {
        let v = f64::from(stale);
        if (v - self.last).abs() > 0.0 {
            self.count.add(now, v - self.last);
            self.last = v;
        }
    }

    /// Time-weighted average fraction of stale derived nodes over
    /// `[start, end]`; 0 for an empty DAG.
    #[must_use]
    pub fn fold(&self, end: SimTime) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.count.mean_over(self.start, end) / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ma_tracker(alpha: f64, init_age: f64) -> StalenessTracker {
        StalenessTracker::new(StalenessSpec::MaxAge { alpha }, 2, 2, t(0.0), |_| {
            t(-init_age)
        })
    }

    #[test]
    fn ma_initially_fresh_objects_expire_via_watchdog() {
        let mut tr = ma_tracker(7.0, 1.0);
        assert_eq!(tr.stale_count(Importance::Low), 0.0);
        let watches = tr.initial_watches();
        assert_eq!(watches.len(), 4);
        assert_eq!(watches[0].at, t(6.0)); // -1 + 7
        for w in watches {
            tr.on_expiry(w, w.at);
        }
        assert_eq!(tr.stale_count(Importance::Low), 2.0);
        assert_eq!(tr.stale_count(Importance::High), 2.0);
        // fold over [0, 12]: stale for [6, 12] -> 0.5
        assert!((tr.fold(Importance::Low, t(12.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ma_initially_stale_objects_counted_from_start() {
        let tr = ma_tracker(7.0, 10.0);
        assert_eq!(tr.stale_count(Importance::Low), 2.0);
        assert!(tr.initial_watches().is_empty());
        assert!((tr.fold(Importance::High, t(5.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ma_install_freshens_and_stale_expiry_respects_version() {
        let mut tr = ma_tracker(7.0, 10.0);
        let id = ViewObjectId::new(Importance::Low, 0);
        assert!(tr.is_stale(id));
        let w = tr.on_install(id, t(1.0), 1, t(2.0)).expect("watch");
        assert!(!tr.is_stale(id));
        assert_eq!(w.at, t(8.0));
        // A newer install supersedes the watchdog.
        let w2 = tr.on_install(id, t(5.0), 2, t(5.5)).expect("watch2");
        tr.on_expiry(w, t(8.0)); // version 1 != 2 -> ignored
        assert!(!tr.is_stale(id));
        tr.on_expiry(w2, t(12.0));
        assert!(tr.is_stale(id));
    }

    #[test]
    fn ma_installing_expired_value_is_immediately_stale() {
        let mut tr = ma_tracker(7.0, 10.0);
        let id = ViewObjectId::new(Importance::High, 1);
        // Installed at t=9 a value generated at t=1 with alpha 7 -> age 8.
        let w = tr.on_install(id, t(1.0), 1, t(9.0));
        assert!(w.is_none());
        assert!(tr.is_stale(id));
    }

    #[test]
    fn uu_receive_then_install_cycle() {
        let mut tr =
            StalenessTracker::new(StalenessSpec::UnappliedUpdate, 1, 0, t(0.0), |_| t(0.0));
        let id = ViewObjectId::new(Importance::Low, 0);
        assert!(!tr.is_stale(id));
        tr.on_receive(id, t(1.0), t(1.1));
        assert!(tr.is_stale(id));
        assert!(tr.on_install(id, t(1.0), 1, t(2.0)).is_none());
        assert!(!tr.is_stale(id));
        // fold over [0, 4]: stale during [1.1, 2.0].
        assert!((tr.fold(Importance::Low, t(4.0)) - 0.9 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn uu_dropped_update_keeps_object_stale_until_newer_install() {
        let mut tr =
            StalenessTracker::new(StalenessSpec::UnappliedUpdate, 1, 0, t(0.0), |_| t(0.0));
        let id = ViewObjectId::new(Importance::Low, 0);
        tr.on_receive(id, t(1.0), t(1.0));
        // The update is dropped from the queue — no install happens. A later
        // *older* install does not freshen:
        tr.on_install(id, t(0.5), 1, t(2.0));
        assert!(tr.is_stale(id));
        // Only installing a generation >= the received one freshens.
        tr.on_install(id, t(3.0), 2, t(3.5));
        assert!(!tr.is_stale(id));
    }

    #[test]
    fn uu_out_of_order_receives_keep_newest() {
        let mut tr =
            StalenessTracker::new(StalenessSpec::UnappliedUpdate, 1, 0, t(0.0), |_| t(0.0));
        let id = ViewObjectId::new(Importance::Low, 0);
        tr.on_receive(id, t(5.0), t(5.0));
        tr.on_receive(id, t(2.0), t(5.1)); // late, older — ignored
        tr.on_install(id, t(2.0), 1, t(6.0));
        assert!(tr.is_stale(id), "newest received (5.0) still unapplied");
        tr.on_install(id, t(5.0), 2, t(7.0));
        assert!(!tr.is_stale(id));
    }

    #[test]
    fn uu_ignores_ma_watchdogs_and_ma_ignores_receives() {
        let uu = StalenessTracker::new(StalenessSpec::UnappliedUpdate, 1, 0, t(0.0), |_| t(0.0));
        assert!(uu.initial_watches().is_empty());
        let mut ma = ma_tracker(7.0, 1.0);
        let id = ViewObjectId::new(Importance::Low, 0);
        ma.on_receive(id, t(100.0), t(0.5));
        assert!(!ma.is_stale(id), "MA ignores receive events");
    }

    #[test]
    fn derived_staleness_integrates_fraction_over_time() {
        let mut d = DerivedStaleness::new(4, t(0.0));
        assert_eq!(d.fold(t(10.0)), 0.0);
        d.observe(t(2.0), 2); // half the DAG stale over [2, 6]
        d.observe(t(6.0), 0);
        // integral = 2 nodes * 4 s = 8 node-seconds over 10 s * 4 nodes.
        assert!((d.fold(t(10.0)) - 0.2).abs() < 1e-12);
        // Redundant observations are no-ops.
        d.observe(t(7.0), 0);
        assert!((d.fold(t(10.0)) - 0.2).abs() < 1e-12);
        assert_eq!(DerivedStaleness::new(0, t(0.0)).fold(t(5.0)), 0.0);
    }

    #[test]
    fn fold_of_empty_class_is_zero() {
        let tr = StalenessTracker::new(StalenessSpec::UnappliedUpdate, 1, 0, t(0.0), |_| t(0.0));
        assert_eq!(tr.fold(Importance::High, t(10.0)), 0.0);
    }

    #[test]
    fn either_is_stale_under_either_component() {
        let mut tr =
            StalenessTracker::new(StalenessSpec::Either { alpha: 7.0 }, 1, 0, t(0.0), |_| {
                t(0.0)
            });
        let id = ViewObjectId::new(Importance::Low, 0);
        assert!(!tr.is_stale(id));
        // UU component: a pending update makes it stale while still young.
        tr.on_receive(id, t(1.0), t(1.0));
        assert!(tr.is_stale(id));
        let w = tr.on_install(id, t(1.0), 1, t(2.0)).expect("MA watch");
        assert!(!tr.is_stale(id));
        // MA component: the watchdog fires with no pending update.
        tr.on_expiry(w, w.at);
        assert!(tr.is_stale(id), "MA-stale even though nothing is pending");
        // A newer install clears both components.
        tr.on_install(id, t(9.0), 2, t(9.5));
        assert!(!tr.is_stale(id));
    }

    #[test]
    fn either_both_components_must_clear() {
        let mut tr =
            StalenessTracker::new(StalenessSpec::Either { alpha: 7.0 }, 1, 0, t(0.0), |_| {
                t(0.0)
            });
        let id = ViewObjectId::new(Importance::Low, 0);
        // Receive generation 5, but install only generation 3: the value is
        // young (MA-fresh) yet a newer update remains unapplied.
        tr.on_receive(id, t(5.0), t(5.0));
        tr.on_install(id, t(3.0), 1, t(5.5));
        assert!(tr.is_stale(id), "UU component still set");
        tr.on_install(id, t(5.0), 2, t(6.0));
        assert!(!tr.is_stale(id));
    }

    #[test]
    fn either_initial_watches_cover_fresh_objects() {
        let tr = StalenessTracker::new(StalenessSpec::Either { alpha: 7.0 }, 2, 1, t(0.0), |_| {
            t(-1.0)
        });
        assert_eq!(tr.initial_watches().len(), 3);
        assert_eq!(tr.spec().alpha(), Some(7.0));
        assert!(tr.spec().tracks_unapplied());
    }
}
