//! The main-memory object store.
//!
//! Holds the two view partitions (low/high importance) plus the general
//! partition (paper §3.2, Figure 1). View objects are refreshed exclusively
//! by installing updates; transactions may read view data and read/write
//! general data. Installs enforce the *worthiness check* of §3.3: an update
//! whose generation timestamp is not newer than the installed value is
//! skipped (this happens when updates are applied out of order).

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

use crate::object::{Importance, ViewObject, ViewObjectId};
use crate::update::Update;

/// Result of attempting to install an update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InstallOutcome {
    /// The update advanced at least one attribute and was written.
    Installed {
        /// The object's version counter after the write.
        new_version: u64,
        /// The object's (minimum-attribute) generation after the write —
        /// what the Maximum Age criterion measures.
        min_generation: SimTime,
    },
    /// The database already held values at least as recent for every
    /// covered attribute; the update was skipped after the lookup (paper
    /// §3.3: "the update can be skipped").
    Superseded,
}

/// The partitioned main-memory database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Store {
    low: Vec<ViewObject>,
    high: Vec<ViewObject>,
    general: Vec<f64>,
    installs: u64,
    superseded: u64,
}

impl Store {
    /// Creates a store with `n_low` + `n_high` view objects and `n_general`
    /// general objects. Every view object starts with payload 0 and the
    /// given initial generation timestamp.
    #[must_use]
    pub fn new(n_low: u32, n_high: u32, n_general: u32, initial_ts: SimTime) -> Self {
        Store {
            low: (0..n_low)
                .map(|_| ViewObject::new(0.0, initial_ts))
                .collect(),
            high: (0..n_high)
                .map(|_| ViewObject::new(0.0, initial_ts))
                .collect(),
            general: vec![0.0; n_general as usize],
            installs: 0,
            superseded: 0,
        }
    }

    /// Creates a store where each view object's initial generation timestamp
    /// is produced by `init_ts(id)` — used to start staleness statistics in
    /// steady state (see DESIGN.md). `attrs` sets the attributes per view
    /// object (1 = the paper's model; >1 enables partial updates).
    #[must_use]
    pub fn with_initial_timestamps<F>(
        n_low: u32,
        n_high: u32,
        n_general: u32,
        attrs: u32,
        mut init_ts: F,
    ) -> Self
    where
        F: FnMut(ViewObjectId) -> SimTime,
    {
        let low = (0..n_low)
            .map(|i| {
                ViewObject::with_attrs(0.0, init_ts(ViewObjectId::new(Importance::Low, i)), attrs)
            })
            .collect();
        let high = (0..n_high)
            .map(|i| {
                ViewObject::with_attrs(0.0, init_ts(ViewObjectId::new(Importance::High, i)), attrs)
            })
            .collect();
        Store {
            low,
            high,
            general: vec![0.0; n_general as usize],
            installs: 0,
            superseded: 0,
        }
    }

    /// Rebuilds a store from persisted per-object state: `restore(id)`
    /// supplies each view object (see [`ViewObject::restore`]), in any
    /// order the caller likes — the store invokes it once per id. General
    /// data is transaction-private scratch and restarts zeroed; the
    /// install/superseded counters restart at zero too (they are run
    /// metrics, not state — the recovered run's report counts its own
    /// installs, with replays accounted separately).
    #[must_use]
    pub fn restore<F>(n_low: u32, n_high: u32, n_general: u32, mut restore: F) -> Self
    where
        F: FnMut(ViewObjectId) -> ViewObject,
    {
        Store {
            low: (0..n_low)
                .map(|i| restore(ViewObjectId::new(Importance::Low, i)))
                .collect(),
            high: (0..n_high)
                .map(|i| restore(ViewObjectId::new(Importance::High, i)))
                .collect(),
            general: vec![0.0; n_general as usize],
            installs: 0,
            superseded: 0,
        }
    }

    /// Number of view objects in a class.
    #[must_use]
    pub fn class_len(&self, class: Importance) -> usize {
        match class {
            Importance::Low => self.low.len(),
            Importance::High => self.high.len(),
        }
    }

    /// Immutable access to a view object.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range for the class.
    #[must_use]
    pub fn view(&self, id: ViewObjectId) -> &ViewObject {
        match id.class {
            Importance::Low => &self.low[id.index as usize],
            Importance::High => &self.high[id.index as usize],
        }
    }

    fn view_mut(&mut self, id: ViewObjectId) -> &mut ViewObject {
        match id.class {
            Importance::Low => &mut self.low[id.index as usize],
            Importance::High => &mut self.high[id.index as usize],
        }
    }

    /// Installs `update`, applying the worthiness check (for partial
    /// updates: at least one covered attribute must advance).
    pub fn install(&mut self, update: &Update) -> InstallOutcome {
        let obj = self.view_mut(update.object);
        if !obj.apply(update.generation_ts, update.payload, update.attr_mask) {
            self.superseded += 1;
            return InstallOutcome::Superseded;
        }
        let new_version = obj.version;
        let min_generation = obj.generation_ts;
        self.installs += 1;
        InstallOutcome::Installed {
            new_version,
            min_generation,
        }
    }

    /// True if the object's installed value is older than `alpha` at `now`
    /// (the Maximum Age staleness test, paper §2).
    #[inline]
    #[must_use]
    pub fn is_stale_ma(&self, id: ViewObjectId, now: SimTime, alpha: f64) -> bool {
        self.view(id).age_at(now) > alpha
    }

    /// Reads a general object.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn read_general(&self, index: usize) -> f64 {
        self.general[index]
    }

    /// Writes a general object.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn write_general(&mut self, index: usize, value: f64) {
        self.general[index] = value;
    }

    /// Number of general objects.
    #[must_use]
    pub fn general_len(&self) -> usize {
        self.general.len()
    }

    /// Successful installs so far.
    #[must_use]
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Updates skipped as superseded so far.
    #[must_use]
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Iterates over all view objects of a class with their ids.
    pub fn iter_class(
        &self,
        class: Importance,
    ) -> impl Iterator<Item = (ViewObjectId, &ViewObject)> {
        let slice = match class {
            Importance::Low => &self.low,
            Importance::High => &self.high,
        };
        slice
            .iter()
            .enumerate()
            .map(move |(i, o)| (ViewObjectId::new(class, i as u32), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn upd(class: Importance, idx: u32, gen: f64, payload: f64) -> Update {
        Update {
            seq: 0,
            object: ViewObjectId::new(class, idx),
            generation_ts: t(gen),
            arrival_ts: t(gen + 0.1),
            payload,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn install_writes_payload_and_bumps_version() {
        let mut s = Store::new(2, 2, 1, t(-1.0));
        let u = upd(Importance::Low, 0, 1.0, 42.0);
        let outcome = s.install(&u);
        assert_eq!(
            outcome,
            InstallOutcome::Installed {
                new_version: 1,
                min_generation: t(1.0),
            }
        );
        let o = s.view(u.object);
        assert_eq!(o.payload, 42.0);
        assert_eq!(o.generation_ts, t(1.0));
        assert_eq!(s.installs(), 1);
    }

    #[test]
    fn stale_update_is_superseded() {
        let mut s = Store::new(1, 1, 0, t(0.0));
        assert!(matches!(
            s.install(&upd(Importance::High, 0, 5.0, 1.0)),
            InstallOutcome::Installed { .. }
        ));
        // An older generation (out-of-order arrival) is skipped.
        assert_eq!(
            s.install(&upd(Importance::High, 0, 3.0, 2.0)),
            InstallOutcome::Superseded
        );
        // Equal generation is also skipped (not newer).
        assert_eq!(
            s.install(&upd(Importance::High, 0, 5.0, 2.0)),
            InstallOutcome::Superseded
        );
        assert_eq!(s.view(ViewObjectId::new(Importance::High, 0)).payload, 1.0);
        assert_eq!(s.superseded(), 2);
    }

    #[test]
    fn ma_staleness_test() {
        let mut s = Store::new(1, 0, 0, t(0.0));
        let id = ViewObjectId::new(Importance::Low, 0);
        s.install(&upd(Importance::Low, 0, 1.0, 1.0));
        assert!(!s.is_stale_ma(id, t(8.0), 7.0));
        assert!(s.is_stale_ma(id, t(8.1), 7.0));
    }

    #[test]
    fn general_data_read_write() {
        let mut s = Store::new(0, 0, 4, t(0.0));
        s.write_general(2, 9.5);
        assert_eq!(s.read_general(2), 9.5);
        assert_eq!(s.read_general(0), 0.0);
        assert_eq!(s.general_len(), 4);
    }

    #[test]
    fn partial_updates_through_the_store() {
        let mut s = Store::with_initial_timestamps(1, 0, 0, 2, |_| t(0.0));
        let id = ViewObjectId::new(Importance::Low, 0);
        let mut u = upd(Importance::Low, 0, 4.0, 1.5);
        u.attr_mask = 0b01;
        assert!(
            matches!(s.install(&u), InstallOutcome::Installed { min_generation, .. } if min_generation == t(0.0))
        );
        // MA staleness follows the oldest attribute.
        assert!(s.is_stale_ma(id, t(8.0), 7.0));
        let mut u2 = upd(Importance::Low, 0, 6.0, 2.5);
        u2.attr_mask = 0b10;
        assert!(
            matches!(s.install(&u2), InstallOutcome::Installed { min_generation, .. } if min_generation == t(4.0))
        );
        assert!(!s.is_stale_ma(id, t(8.0), 7.0));
        // A partial update to an already-newer attribute is superseded.
        let mut u3 = upd(Importance::Low, 0, 3.0, 0.0);
        u3.attr_mask = 0b01;
        assert_eq!(s.install(&u3), InstallOutcome::Superseded);
    }

    #[test]
    fn initial_timestamps_are_applied() {
        let s = Store::with_initial_timestamps(2, 1, 0, 1, |id| match (id.class, id.index) {
            (Importance::Low, 0) => t(-1.0),
            (Importance::Low, 1) => t(-2.0),
            _ => t(-3.0),
        });
        assert_eq!(
            s.view(ViewObjectId::new(Importance::Low, 1)).generation_ts,
            t(-2.0)
        );
        assert_eq!(
            s.view(ViewObjectId::new(Importance::High, 0)).generation_ts,
            t(-3.0)
        );
    }

    #[test]
    fn restore_rebuilds_objects_and_resets_counters() {
        let mut orig = Store::new(2, 1, 3, t(0.0));
        orig.install(&upd(Importance::Low, 1, 2.0, 7.0));
        let restored = Store::restore(2, 1, 3, |id| orig.view(id).clone());
        let id = ViewObjectId::new(Importance::Low, 1);
        assert_eq!(restored.view(id).payload, 7.0);
        assert_eq!(restored.view(id).version, 1);
        assert_eq!(restored.view(id).generation_ts, t(2.0));
        assert_eq!(restored.general_len(), 3);
        // Run counters are metrics, not state: they restart at zero.
        assert_eq!(restored.installs(), 0);
        assert_eq!(restored.superseded(), 0);
        // Worthiness still applies against the restored generations.
        let mut restored = restored;
        assert_eq!(
            restored.install(&upd(Importance::Low, 1, 1.5, 9.0)),
            InstallOutcome::Superseded
        );
    }

    #[test]
    fn iter_class_yields_all() {
        let s = Store::new(3, 5, 0, t(0.0));
        assert_eq!(s.iter_class(Importance::Low).count(), 3);
        assert_eq!(s.iter_class(Importance::High).count(), 5);
        assert_eq!(s.class_len(Importance::High), 5);
    }
}
