//! Update-triggered rules (paper §7 future work: "the efficient importation
//! of update streams when updates can trigger a set of database rules" —
//! STRIP itself provided triggers, §1).
//!
//! A rule watches a set of view objects and maintains one derived *general*
//! object (e.g. a composite index over a basket of instruments). Installing
//! an update into any watched object *fires* the rule; executing the rule
//! costs CPU (it re-reads its sources and rewrites the derived value). The
//! controller schedules rule executions as update-side work, so rule load
//! competes with installs and transactions exactly like the rest of the
//! update stream.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::object::{Importance, ViewObjectId};
use crate::store::Store;

/// One derived-data rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule identifier (index into the rule set).
    pub id: u32,
    /// View objects whose installs fire this rule.
    pub sources: Vec<ViewObjectId>,
    /// Index of the general object this rule maintains.
    pub derived_general: u32,
    /// Instructions one execution costs.
    pub exec_instr: f64,
}

/// An immutable set of rules with a source-object index.
///
/// # Example
///
/// ```
/// use strip_db::object::{Importance, ViewObjectId};
/// use strip_db::triggers::{Rule, RuleSet};
///
/// let obj = |i| ViewObjectId::new(Importance::Low, i);
/// let rules = RuleSet::new(vec![Rule {
///     id: 0,
///     sources: vec![obj(1), obj(2)],
///     derived_general: 0,
///     exec_instr: 10_000.0,
/// }]);
/// assert_eq!(rules.triggered_by(obj(2)), &[0]);
/// assert!(rules.triggered_by(obj(5)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    by_source: BTreeMap<ViewObjectId, Vec<u32>>,
}

impl RuleSet {
    /// Builds a rule set and its source index.
    #[must_use]
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut by_source: BTreeMap<ViewObjectId, Vec<u32>> = BTreeMap::new();
        for rule in &rules {
            for &src in &rule.sources {
                by_source.entry(src).or_default().push(rule.id);
            }
        }
        RuleSet { rules, by_source }
    }

    /// The rules fired by an install into `object`.
    #[must_use]
    pub fn triggered_by(&self, object: ViewObjectId) -> &[u32] {
        self.by_source.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Looks up a rule by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn rule(&self, id: u32) -> &Rule {
        &self.rules[id as usize]
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set holds no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Instructions one execution costs given the number of *distinct
    /// changed sources* accumulated while the rule sat in the queue.
    ///
    /// Historically every execution charged the whole-refresh
    /// `exec_instr` even when coalescing had merged several firings of
    /// the same (or no) source — a queued rule whose delta set was one
    /// object out of four still paid for rereading all four. The charge
    /// now scales with the coalesced delta set: `exec_instr ·
    /// changed/|sources|`, clamped to the full refresh, and an empty
    /// delta set charges nothing. The regression test
    /// `coalesced_execution_charges_delta_scaled_instructions` pins the
    /// old flat charge against the new scaled one.
    #[must_use]
    pub fn exec_cost(&self, id: u32, changed_sources: usize) -> f64 {
        let rule = &self.rules[id as usize];
        if rule.sources.is_empty() {
            return 0.0;
        }
        let changed = changed_sources.min(rule.sources.len());
        rule.exec_instr * changed as f64 / rule.sources.len() as f64
    }

    /// Executes a rule against the store: recompute the derived general
    /// object as the mean of its sources' current payloads. Returns the new
    /// derived value.
    pub fn execute(&self, id: u32, store: &mut Store) -> f64 {
        let rule = &self.rules[id as usize];
        let sum: f64 = rule.sources.iter().map(|&s| store.view(s).payload).sum();
        let value = if rule.sources.is_empty() {
            0.0
        } else {
            sum / rule.sources.len() as f64
        };
        store.write_general(rule.derived_general as usize, value);
        value
    }
}

/// Deterministically generates `n_rules` rules, each watching
/// `sources_per_rule` uniformly random view objects and maintaining one
/// general object (round-robin), costing `exec_instr` per execution.
#[must_use]
pub fn generate_rules(
    n_rules: u32,
    sources_per_rule: u32,
    exec_instr: f64,
    n_low: u32,
    n_high: u32,
    n_general: u32,
    rng: &mut strip_sim::rng::Xoshiro256pp,
) -> RuleSet {
    let total = u64::from(n_low) + u64::from(n_high);
    let mut rules = Vec::with_capacity(n_rules as usize);
    for id in 0..n_rules {
        let sources = (0..sources_per_rule)
            .map(|_| {
                let k = rng.next_below(total.max(1));
                if k < u64::from(n_low) {
                    ViewObjectId::new(Importance::Low, k as u32)
                } else {
                    ViewObjectId::new(Importance::High, (k - u64::from(n_low)) as u32)
                }
            })
            .collect();
        rules.push(Rule {
            id,
            sources,
            derived_general: id % n_general.max(1),
            exec_instr,
        });
    }
    RuleSet::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strip_sim::rng::Xoshiro256pp;
    use strip_sim::time::SimTime;

    fn obj(i: u32) -> ViewObjectId {
        ViewObjectId::new(Importance::Low, i)
    }

    #[test]
    fn source_index_finds_rules() {
        let rs = RuleSet::new(vec![
            Rule {
                id: 0,
                sources: vec![obj(1), obj(2)],
                derived_general: 0,
                exec_instr: 100.0,
            },
            Rule {
                id: 1,
                sources: vec![obj(2)],
                derived_general: 1,
                exec_instr: 100.0,
            },
        ]);
        assert_eq!(rs.triggered_by(obj(1)), &[0]);
        assert_eq!(rs.triggered_by(obj(2)), &[0, 1]);
        assert!(rs.triggered_by(obj(9)).is_empty());
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
    }

    #[test]
    fn execute_recomputes_derived_value() {
        let mut store = Store::new(4, 0, 2, SimTime::ZERO);
        let rs = RuleSet::new(vec![Rule {
            id: 0,
            sources: vec![obj(0), obj(1)],
            derived_general: 1,
            exec_instr: 100.0,
        }]);
        // Give the sources values via installs.
        for (i, v) in [(0u32, 10.0), (1u32, 30.0)] {
            let u = crate::update::Update {
                seq: u64::from(i),
                object: obj(i),
                generation_ts: SimTime::from_secs(1.0),
                arrival_ts: SimTime::from_secs(1.0),
                payload: v,
                attr_mask: crate::update::Update::COMPLETE,
            };
            store.install(&u);
        }
        let derived = rs.execute(0, &mut store);
        assert_eq!(derived, 20.0);
        assert_eq!(store.read_general(1), 20.0);
    }

    #[test]
    fn coalesced_execution_charges_delta_scaled_instructions() {
        let rs = RuleSet::new(vec![Rule {
            id: 0,
            sources: vec![obj(0), obj(1), obj(2), obj(3)],
            derived_general: 0,
            exec_instr: 10_000.0,
        }]);
        // Pre-fix, every execution charged the whole refresh regardless of
        // how small the coalesced delta set was.
        let old_flat_charge = rs.rule(0).exec_instr;
        assert_eq!(old_flat_charge, 10_000.0);
        // Post-fix: the charge scales with the distinct changed sources.
        assert_eq!(rs.exec_cost(0, 0), 0.0, "empty delta set is free");
        assert_eq!(rs.exec_cost(0, 1), 2_500.0);
        assert_eq!(rs.exec_cost(0, 2), 5_000.0);
        assert!(rs.exec_cost(0, 1) < old_flat_charge);
        // A full (or over-reported) delta set still pays the old charge.
        assert_eq!(rs.exec_cost(0, 4), old_flat_charge);
        assert_eq!(rs.exec_cost(0, 99), old_flat_charge);
        // Degenerate rule: no sources, no charge.
        let empty = RuleSet::new(vec![Rule {
            id: 0,
            sources: vec![],
            derived_general: 0,
            exec_instr: 10_000.0,
        }]);
        assert_eq!(empty.exec_cost(0, 3), 0.0);
    }

    #[test]
    fn generated_rules_cover_both_partitions() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let rs = generate_rules(50, 4, 1_000.0, 10, 10, 5, &mut rng);
        assert_eq!(rs.len(), 50);
        let mut low = false;
        let mut high = false;
        for id in 0..50 {
            let r = rs.rule(id);
            assert_eq!(r.sources.len(), 4);
            assert!(r.derived_general < 5);
            for s in &r.sources {
                match s.class {
                    Importance::Low => low = true,
                    Importance::High => high = true,
                }
            }
        }
        assert!(low && high);
    }
}
