//! External updates.
//!
//! Each update refreshes exactly one view object (paper §3.3) and carries
//! the timestamp at which its value was *generated* by the external source.
//! Updates age in the network before arriving, so `arrival_ts >=
//! generation_ts`; the update queue is kept in generation order, not arrival
//! order.

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

use crate::object::ViewObjectId;

/// One update to a snapshot view object. An update is *complete* (provides
/// every attribute, the paper's focus) or *partial* (provides a subset —
/// paper §2, evaluated as an extension here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// Global arrival sequence number (assigned by the receiver; unique).
    pub seq: u64,
    /// The view object this update refreshes.
    pub object: ViewObjectId,
    /// Generation timestamp at the external source.
    pub generation_ts: SimTime,
    /// Arrival timestamp at the database system.
    pub arrival_ts: SimTime,
    /// The new value.
    pub payload: f64,
    /// Bitmask of the attributes provided ([`Update::COMPLETE`] = all).
    pub attr_mask: u64,
}

impl Update {
    /// Mask meaning "every attribute" (a complete update).
    pub const COMPLETE: u64 = u64::MAX;

    /// Number of attributes this update provides, for an object with
    /// `attrs` attributes.
    #[inline]
    #[must_use]
    pub fn provided_attrs(&self, attrs: u32) -> u32 {
        if attrs >= 64 {
            return self.attr_mask.count_ones();
        }
        (self.attr_mask & ((1u64 << attrs) - 1)).count_ones()
    }

    /// Age of the update's value at time `now`.
    #[inline]
    #[must_use]
    pub fn age_at(&self, now: SimTime) -> f64 {
        now.since(self.generation_ts)
    }

    /// True if the update's value exceeds the maximum age `alpha` at `now`
    /// (it would install an already-stale value under the MA criterion).
    #[inline]
    #[must_use]
    pub fn expired_at(&self, now: SimTime, alpha: f64) -> bool {
        self.age_at(now) > alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Importance;

    fn upd(gen: f64, arr: f64) -> Update {
        Update {
            seq: 0,
            object: ViewObjectId::new(Importance::Low, 0),
            generation_ts: SimTime::from_secs(gen),
            arrival_ts: SimTime::from_secs(arr),
            payload: 1.0,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn age_accounts_for_network_delay() {
        let u = upd(1.0, 1.5);
        assert_eq!(u.age_at(SimTime::from_secs(2.0)), 1.0);
    }

    #[test]
    fn provided_attrs_counts_within_width() {
        let mut u = upd(0.0, 0.1);
        assert_eq!(u.provided_attrs(4), 4);
        u.attr_mask = 0b0101;
        assert_eq!(u.provided_attrs(4), 2);
        assert_eq!(u.provided_attrs(2), 1);
        assert_eq!(u.provided_attrs(64), 2);
    }

    #[test]
    fn expiry_is_strict() {
        let u = upd(0.0, 0.1);
        assert!(!u.expired_at(SimTime::from_secs(7.0), 7.0));
        assert!(u.expired_at(SimTime::from_secs(7.0001), 7.0));
    }
}
