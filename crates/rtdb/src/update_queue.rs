//! The application-level update queue (paper §3.3, §4.2).
//!
//! Unapplied updates are kept **in generation-time order** (not arrival
//! order) so the system can (a) apply updates in order even when the network
//! reorders them, and (b) discard expired updates under the Maximum Age
//! criterion with a constant-time head check.
//!
//! The queue supports both service disciplines studied in the paper:
//! * **FIFO** — pop the oldest generation first;
//! * **LIFO** — pop the newest generation first (maximises the remaining
//!   lifetime of the installed value).
//!
//! It is bounded at `UQ_max`; when a new update would overflow the queue the
//! *oldest* update is discarded (§4.2). The structure also supports the
//! paper's future-work extension of a hash index over queued updates: in
//! dedup mode, inserting an update removes any older queued update for the
//! same object (complete updates to snapshot views make all but the newest
//! worthless), which both bounds the queue under UU and makes On-Demand
//! lookups constant time.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

use crate::object::ViewObjectId;
use crate::update::Update;

/// Key ordering queued updates by generation time (sequence number breaks
/// ties deterministically).
type QueueKey = (SimTime, u64);

/// Outcome of an insert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertOutcome {
    /// Older same-object updates removed by dedup mode.
    pub deduped: usize,
    /// The update discarded because the queue was full (may be the
    /// just-inserted update itself if it was the oldest).
    pub displaced: Option<Update>,
}

/// Generation-ordered bounded buffer of unapplied updates.
///
/// # Example
///
/// ```
/// use strip_db::object::{Importance, ViewObjectId};
/// use strip_db::update::Update;
/// use strip_db::update_queue::UpdateQueue;
/// use strip_sim::time::SimTime;
///
/// let mut q = UpdateQueue::new(100, false);
/// for (seq, gen) in [(0u64, 3.0), (1, 1.0), (2, 2.0)] {
///     q.insert(Update {
///         seq,
///         object: ViewObjectId::new(Importance::Low, seq as u32),
///         generation_ts: SimTime::from_secs(gen),
///         arrival_ts: SimTime::from_secs(gen + 0.1),
///         payload: 0.0,
///         attr_mask: Update::COMPLETE,
///     });
/// }
/// // FIFO service returns the oldest *generation*, not the first arrival.
/// assert_eq!(q.pop_oldest().unwrap().seq, 1);
/// // MA expiry discards from the head in O(expired).
/// assert_eq!(q.discard_expired(SimTime::from_secs(9.1), 7.0), 1);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UpdateQueue {
    by_generation: BTreeMap<QueueKey, Update>,
    per_object: HashMap<ViewObjectId, BTreeSet<QueueKey>>,
    capacity: usize,
    dedup: bool,
    overflow_dropped: u64,
    expired_dropped: u64,
    dedup_dropped: u64,
}

impl UpdateQueue {
    /// Creates a queue bounded at `capacity` updates. With `dedup` enabled
    /// the hash-index extension keeps at most one (the newest) update per
    /// object.
    #[must_use]
    pub fn new(capacity: usize, dedup: bool) -> Self {
        UpdateQueue {
            by_generation: BTreeMap::new(),
            per_object: HashMap::new(),
            capacity,
            dedup,
            overflow_dropped: 0,
            expired_dropped: 0,
            dedup_dropped: 0,
        }
    }

    fn key(u: &Update) -> QueueKey {
        (u.generation_ts, u.seq)
    }

    fn unlink(&mut self, key: QueueKey) -> Option<Update> {
        let update = self.by_generation.remove(&key)?;
        if let Some(set) = self.per_object.get_mut(&update.object) {
            set.remove(&key);
            if set.is_empty() {
                self.per_object.remove(&update.object);
            }
        }
        Some(update)
    }

    fn link(&mut self, update: Update) {
        let key = Self::key(&update);
        self.per_object.entry(update.object).or_default().insert(key);
        let prev = self.by_generation.insert(key, update);
        debug_assert!(prev.is_none(), "duplicate queue key");
    }

    /// Enqueues `update`, applying dedup (if enabled) and the overflow
    /// policy.
    pub fn insert(&mut self, update: Update) -> InsertOutcome {
        let mut outcome = InsertOutcome {
            deduped: 0,
            displaced: None,
        };
        if self.dedup {
            let new_key = Self::key(&update);
            // A newer (or equal) update for the same object is already
            // queued: the arrival is worthless — drop it instead.
            let superseded = self
                .per_object
                .get(&update.object)
                .and_then(|set| set.iter().next_back())
                .is_some_and(|&newest| newest >= new_key);
            if superseded {
                outcome.deduped = 1;
                self.dedup_dropped += 1;
                return outcome;
            }
            // Otherwise remove the queued updates this one supersedes.
            let older: Vec<QueueKey> = self
                .per_object
                .get(&update.object)
                .map(|set| set.range(..new_key).copied().collect())
                .unwrap_or_default();
            for key in older {
                self.unlink(key);
                outcome.deduped += 1;
                self.dedup_dropped += 1;
            }
        }
        self.link(update);
        if self.by_generation.len() > self.capacity {
            // Discard the oldest update (§4.2) — possibly the new arrival.
            let oldest_key = *self
                .by_generation
                .keys()
                .next()
                .expect("non-empty queue has an oldest entry");
            outcome.displaced = self.unlink(oldest_key);
            self.overflow_dropped += 1;
        }
        outcome
    }

    /// Removes the update with the oldest generation (FIFO service).
    pub fn pop_oldest(&mut self) -> Option<Update> {
        let key = *self.by_generation.keys().next()?;
        self.unlink(key)
    }

    /// Removes the update with the newest generation (LIFO service).
    pub fn pop_newest(&mut self) -> Option<Update> {
        let key = *self.by_generation.keys().next_back()?;
        self.unlink(key)
    }

    /// Discards every queued update whose value age exceeds `alpha` at
    /// `now` (MA expiry, performed at scheduling points). Returns how many
    /// were discarded. Because the queue is generation-ordered this only
    /// inspects the head.
    pub fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let mut n = 0;
        while let Some((&(gen_ts, seq), _)) = self.by_generation.iter().next() {
            // Same age test as `Update::expired_at`, so the head check and
            // per-update expiry agree bit-for-bit.
            if now.since(gen_ts) <= alpha {
                break;
            }
            self.unlink((gen_ts, seq));
            n += 1;
        }
        self.expired_dropped += n as u64;
        n
    }

    /// The newest queued update for `object`, if any (what an On-Demand
    /// refresh or an Unapplied-Update staleness check looks for).
    #[must_use]
    pub fn newest_for(&self, object: ViewObjectId) -> Option<&Update> {
        let key = *self.per_object.get(&object)?.iter().next_back()?;
        self.by_generation.get(&key)
    }

    /// Removes and returns the newest queued update for `object`.
    pub fn take_newest_for(&mut self, object: ViewObjectId) -> Option<Update> {
        let key = *self.per_object.get(&object)?.iter().next_back()?;
        self.unlink(key)
    }

    /// True if any update for `object` is queued.
    #[must_use]
    pub fn has_pending_for(&self, object: ViewObjectId) -> bool {
        self.per_object.contains_key(&object)
    }

    /// Removes the newest update for the object with the highest `score`
    /// (access-driven service, extension): scans the per-object index
    /// (O(distinct objects)), breaking score ties by object id so service
    /// order is deterministic.
    pub fn pop_hottest<F>(&mut self, score: F) -> Option<Update>
    where
        F: Fn(ViewObjectId) -> u64,
    {
        let hottest = self
            .per_object
            .keys()
            .copied()
            .max_by_key(|&id| (score(id), std::cmp::Reverse(id)))?;
        self.take_newest_for(hottest)
    }

    /// Number of queued updates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_generation.len()
    }

    /// True when no updates are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_generation.is_empty()
    }

    /// The configured bound (`UQ_max`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Updates discarded by the overflow policy so far.
    #[must_use]
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }

    /// Updates discarded as MA-expired so far.
    #[must_use]
    pub fn expired_dropped(&self) -> u64 {
        self.expired_dropped
    }

    /// Updates removed as superseded by dedup mode so far.
    #[must_use]
    pub fn dedup_dropped(&self) -> u64 {
        self.dedup_dropped
    }

    /// Iterates queued updates in generation order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.by_generation.values()
    }

    /// Internal consistency check used by tests: the per-object index and
    /// the generation map describe the same set.
    #[doc(hidden)]
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let indexed: usize = self.per_object.values().map(BTreeSet::len).sum();
        if indexed != self.by_generation.len() {
            return false;
        }
        self.per_object.iter().all(|(obj, keys)| {
            keys.iter().all(|k| {
                self.by_generation
                    .get(k)
                    .is_some_and(|u| u.object == *obj && Self::key(u) == *k)
            })
        })
    }
}

/// A pair of update queues partitioned by importance (paper §4.2: "It would
/// also be possible to split the update queue into two queues, and to
/// partition updates by their importance. When no transactions were waiting,
/// updates could first be installed out of the high importance queue. This
/// enhancement is a subject for future study.") — implemented here. In
/// unsplit mode it degenerates to a single [`UpdateQueue`].
#[derive(Debug, Clone)]
pub struct DualUpdateQueue {
    /// Low-importance updates — or everything, when not split.
    low: UpdateQueue,
    /// High-importance updates when split mode is on.
    high: Option<UpdateQueue>,
}

impl DualUpdateQueue {
    /// Creates the queue set. With `split`, each partition is bounded at
    /// `capacity` separately (the bound protects memory per queue).
    #[must_use]
    pub fn new(capacity: usize, dedup: bool, split: bool) -> Self {
        DualUpdateQueue {
            low: UpdateQueue::new(capacity, dedup),
            high: split.then(|| UpdateQueue::new(capacity, dedup)),
        }
    }

    fn queue_for(&self, object: ViewObjectId) -> &UpdateQueue {
        match (&self.high, object.class) {
            (Some(high), crate::object::Importance::High) => high,
            _ => &self.low,
        }
    }

    fn queue_for_mut(&mut self, object: ViewObjectId) -> &mut UpdateQueue {
        match (&mut self.high, object.class) {
            (Some(high), crate::object::Importance::High) => high,
            _ => &mut self.low,
        }
    }

    /// Enqueues an update into its partition.
    pub fn insert(&mut self, update: Update) -> InsertOutcome {
        self.queue_for_mut(update.object).insert(update)
    }

    /// Removes the next update to install: high-importance partition first,
    /// then low, each under the given discipline (`newest_first` = LIFO).
    pub fn pop(&mut self, newest_first: bool) -> Option<Update> {
        let pick = |q: &mut UpdateQueue| {
            if newest_first {
                q.pop_newest()
            } else {
                q.pop_oldest()
            }
        };
        if let Some(high) = self.high.as_mut() {
            if let Some(u) = pick(high) {
                return Some(u);
            }
        }
        pick(&mut self.low)
    }

    /// Discards MA-expired updates from both partitions.
    pub fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let mut n = self.low.discard_expired(now, alpha);
        if let Some(high) = self.high.as_mut() {
            n += high.discard_expired(now, alpha);
        }
        n
    }

    /// The newest queued update for `object`.
    #[must_use]
    pub fn newest_for(&self, object: ViewObjectId) -> Option<&Update> {
        self.queue_for(object).newest_for(object)
    }

    /// Removes and returns the newest queued update for `object`.
    pub fn take_newest_for(&mut self, object: ViewObjectId) -> Option<Update> {
        self.queue_for_mut(object).take_newest_for(object)
    }

    /// Access-driven pop: hottest object first, high partition taking
    /// precedence in split mode.
    pub fn pop_hottest<F>(&mut self, score: F) -> Option<Update>
    where
        F: Fn(ViewObjectId) -> u64,
    {
        if let Some(high) = self.high.as_mut() {
            if let Some(u) = high.pop_hottest(&score) {
                return Some(u);
            }
        }
        self.low.pop_hottest(score)
    }

    /// Total queued updates across partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.low.len() + self.high.as_ref().map_or(0, UpdateQueue::len)
    }

    /// True when both partitions are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total overflow discards.
    #[must_use]
    pub fn overflow_dropped(&self) -> u64 {
        self.low.overflow_dropped() + self.high.as_ref().map_or(0, UpdateQueue::overflow_dropped)
    }

    /// Total MA-expiry discards.
    #[must_use]
    pub fn expired_dropped(&self) -> u64 {
        self.low.expired_dropped() + self.high.as_ref().map_or(0, UpdateQueue::expired_dropped)
    }

    /// Total dedup removals.
    #[must_use]
    pub fn dedup_dropped(&self) -> u64 {
        self.low.dedup_dropped() + self.high.as_ref().map_or(0, UpdateQueue::dedup_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Importance;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn upd(seq: u64, obj_idx: u32, gen: f64) -> Update {
        Update {
            seq,
            object: ViewObjectId::new(Importance::Low, obj_idx),
            generation_ts: t(gen),
            arrival_ts: t(gen + 0.05),
            payload: seq as f64,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn generation_order_not_arrival_order() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 5.0)); // arrives first, generated later
        q.insert(upd(1, 1, 2.0)); // arrives second, generated earlier
        assert_eq!(q.pop_oldest().unwrap().seq, 1);
        assert_eq!(q.pop_oldest().unwrap().seq, 0);
    }

    #[test]
    fn lifo_pops_newest_generation() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 3.0));
        q.insert(upd(2, 2, 2.0));
        assert_eq!(q.pop_newest().unwrap().seq, 1);
        assert_eq!(q.pop_newest().unwrap().seq, 2);
        assert_eq!(q.pop_newest().unwrap().seq, 0);
        assert!(q.pop_newest().is_none());
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut q = UpdateQueue::new(2, false);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 2.0));
        let out = q.insert(upd(2, 2, 3.0));
        assert_eq!(out.displaced.unwrap().seq, 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.overflow_dropped(), 1);
        assert!(q.check_invariants());
    }

    #[test]
    fn overflow_can_discard_the_arrival_itself() {
        let mut q = UpdateQueue::new(2, false);
        q.insert(upd(0, 0, 5.0));
        q.insert(upd(1, 1, 6.0));
        // The arrival is the oldest generation, so it is the one discarded.
        let out = q.insert(upd(2, 2, 1.0));
        assert_eq!(out.displaced.unwrap().seq, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn expiry_discards_only_old_generations() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 4.0));
        q.insert(upd(2, 2, 9.5));
        // At t = 10 with alpha = 7, generations before 3.0 expire.
        assert_eq!(q.discard_expired(t(10.0), 7.0), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.expired_dropped(), 1);
        // Exactly at the boundary (age == alpha) is not expired.
        assert_eq!(q.discard_expired(t(11.0), 7.0), 0);
        assert_eq!(q.discard_expired(t(11.1), 7.0), 1);
        assert!(q.check_invariants());
    }

    #[test]
    fn newest_for_object_across_duplicates() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 7, 1.0));
        q.insert(upd(1, 7, 3.0));
        q.insert(upd(2, 7, 2.0));
        q.insert(upd(3, 8, 9.0));
        assert_eq!(q.newest_for(ViewObjectId::new(Importance::Low, 7)).unwrap().seq, 1);
        let taken = q.take_newest_for(ViewObjectId::new(Importance::Low, 7)).unwrap();
        assert_eq!(taken.seq, 1);
        // Older duplicates remain when dedup is off.
        assert!(q.has_pending_for(ViewObjectId::new(Importance::Low, 7)));
        assert_eq!(q.len(), 3);
        assert!(q.check_invariants());
    }

    #[test]
    fn dedup_keeps_only_newest_per_object() {
        let mut q = UpdateQueue::new(10, true);
        q.insert(upd(0, 7, 1.0));
        q.insert(upd(1, 7, 2.0));
        let out = q.insert(upd(2, 7, 3.0));
        assert_eq!(out.deduped, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dedup_dropped(), 2);
        assert_eq!(q.newest_for(ViewObjectId::new(Importance::Low, 7)).unwrap().seq, 2);
        assert!(q.check_invariants());
    }

    #[test]
    fn dedup_discards_late_older_arrival() {
        let mut q = UpdateQueue::new(10, true);
        q.insert(upd(0, 7, 5.0));
        // An older generation arriving late is itself worthless: dropped.
        let out = q.insert(upd(1, 7, 2.0));
        assert_eq!(out.deduped, 1);
        assert!(out.displaced.is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.newest_for(ViewObjectId::new(Importance::Low, 7)).unwrap().seq, 0);
        assert_eq!(q.dedup_dropped(), 1);
    }

    #[test]
    fn missing_object_lookups() {
        let mut q = UpdateQueue::new(4, false);
        let ghost = ViewObjectId::new(Importance::High, 99);
        assert!(q.newest_for(ghost).is_none());
        assert!(q.take_newest_for(ghost).is_none());
        assert!(!q.has_pending_for(ghost));
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 4);
    }

    fn hupd(seq: u64, obj_idx: u32, gen: f64) -> Update {
        Update {
            seq,
            object: ViewObjectId::new(Importance::High, obj_idx),
            generation_ts: t(gen),
            arrival_ts: t(gen + 0.05),
            payload: seq as f64,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn dual_unsplit_behaves_like_single_queue() {
        let mut q = DualUpdateQueue::new(10, false, false);
        q.insert(upd(0, 0, 2.0));
        q.insert(hupd(1, 0, 1.0));
        // FIFO over the single merged queue: oldest generation first.
        assert_eq!(q.pop(false).unwrap().seq, 1);
        assert_eq!(q.pop(false).unwrap().seq, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn dual_split_serves_high_importance_first() {
        let mut q = DualUpdateQueue::new(10, false, true);
        q.insert(upd(0, 0, 1.0)); // low, oldest generation overall
        q.insert(hupd(1, 0, 5.0)); // high
        q.insert(hupd(2, 1, 3.0)); // high
        // High partition drains first (FIFO within it), then low.
        assert_eq!(q.pop(false).unwrap().seq, 2);
        assert_eq!(q.pop(false).unwrap().seq, 1);
        assert_eq!(q.pop(false).unwrap().seq, 0);
        assert!(q.pop(false).is_none());
    }

    #[test]
    fn dual_split_routes_lookups_by_class() {
        let mut q = DualUpdateQueue::new(10, false, true);
        q.insert(upd(0, 7, 1.0));
        q.insert(hupd(1, 7, 2.0));
        assert_eq!(q.newest_for(ViewObjectId::new(Importance::Low, 7)).unwrap().seq, 0);
        assert_eq!(q.newest_for(ViewObjectId::new(Importance::High, 7)).unwrap().seq, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.take_newest_for(ViewObjectId::new(Importance::High, 7)).unwrap().seq, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn dual_split_expiry_and_counters_span_partitions() {
        let mut q = DualUpdateQueue::new(2, false, true);
        q.insert(upd(0, 0, 1.0));
        q.insert(hupd(1, 0, 1.5));
        q.insert(upd(2, 1, 2.0));
        q.insert(upd(3, 2, 3.0)); // low partition overflows (cap 2)
        assert_eq!(q.overflow_dropped(), 1);
        assert_eq!(q.discard_expired(t(10.0), 7.0), 2); // gens 1.5 and 2.0
        assert_eq!(q.expired_dropped(), 2);
    }

    #[test]
    fn pop_hottest_orders_by_score_then_id() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 3, 1.0));
        q.insert(upd(1, 3, 2.0)); // newest for object 3
        q.insert(upd(2, 5, 0.5));
        q.insert(upd(3, 7, 3.0));
        let score = |id: ViewObjectId| match id.index {
            5 => 10u64,
            3 => 10,
            _ => 1,
        };
        // Tie between objects 3 and 5 broken by the smaller id; newest
        // update for that object pops. Object 3 still holds its older
        // update, so it wins again before object 5's score drops out.
        assert_eq!(q.pop_hottest(score).unwrap().seq, 1);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 0);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 2);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 3);
        assert!(q.pop_hottest(score).is_none());
        assert!(q.check_invariants());
    }

    #[test]
    fn dual_pop_hottest_prefers_high_partition() {
        let mut q = DualUpdateQueue::new(10, false, true);
        q.insert(upd(0, 0, 1.0)); // low, hot
        q.insert(hupd(1, 9, 1.0)); // high, cold
        let score = |id: ViewObjectId| u64::from(id.class == Importance::Low) * 100;
        // Split mode: high partition drains first regardless of heat.
        assert_eq!(q.pop_hottest(score).unwrap().seq, 1);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 0);
    }

    #[test]
    fn iter_is_generation_ordered() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 3.0));
        q.insert(upd(1, 1, 1.0));
        q.insert(upd(2, 2, 2.0));
        let gens: Vec<f64> = q.iter().map(|u| u.generation_ts.as_secs()).collect();
        assert_eq!(gens, vec![1.0, 2.0, 3.0]);
    }
}
