//! The application-level update queue (paper §3.3, §4.2).
//!
//! Unapplied updates are kept **in generation-time order** (not arrival
//! order) so the system can (a) apply updates in order even when the network
//! reorders them, and (b) discard expired updates under the Maximum Age
//! criterion with a constant-time head check.
//!
//! The queue supports both service disciplines studied in the paper:
//! * **FIFO** — pop the oldest generation first;
//! * **LIFO** — pop the newest generation first (maximises the remaining
//!   lifetime of the installed value).
//!
//! It is bounded at `UQ_max`; when a new update would overflow the queue the
//! *oldest* update is discarded (§4.2) — or, under a non-default
//! [`ShedPolicy`], another victim chosen by the configured shedding rule.
//! The structure also supports the
//! paper's future-work extension of a hash index over queued updates: in
//! dedup mode, inserting an update removes any older queued update for the
//! same object (complete updates to snapshot views make all but the newest
//! worthless), which both bounds the queue under UU and makes On-Demand
//! lookups constant time.
//!
//! # Layout
//!
//! This is the hottest structure in the simulator (~400 inserts per
//! simulated second, every one of Figures 3–16 sweeps thousands of seconds),
//! so it is built for the cache, not for generality: update nodes live in a
//! slab arena (`Vec<Node>` plus an intrusive free list, so steady state
//! performs **zero allocations**) and each node is threaded onto two
//! intrusive doubly-linked lists —
//!
//! * the **global list**, sorted by `(generation_ts, seq)`, giving O(1)
//!   FIFO/LIFO dequeue, O(1) overflow discard and O(expired) MA expiry;
//! * a **per-object chain** anchored in a dense `Vec` indexed by
//!   [`ViewObjectId`], giving O(1) newest-for-object lookup and O(1)
//!   per-object drain.
//!
//! Enqueue finds the global position by walking back from the tail past
//! larger keys. Updates arrive nearly sorted by generation time (an arrival
//! is out of order only w.r.t. updates generated after it that arrived
//! before it, ~`λ_u · mean_age / 2` of them), so the walk is amortised O(1)
//! on the simulator's streams. The seed `BTreeMap`-based implementation is
//! preserved verbatim in [`reference`] as the benchmark baseline and the
//! proptest oracle.

pub mod reference;

use serde::{Deserialize, Serialize};
use strip_sim::time::SimTime;

use crate::object::{Importance, ViewObjectId};
use crate::shed::ShedPolicy;
use crate::update::Update;

/// Key ordering queued updates by generation time (sequence number breaks
/// ties deterministically).
type QueueKey = (SimTime, u64);

/// Sentinel node index meaning "no node".
const NIL: u32 = u32::MAX;

/// One slab entry: the update plus its links on the global list
/// (`prev`/`next`) and on its object's chain (`obj_prev`/`obj_next`). Free
/// entries reuse `next` as the free-list link.
#[derive(Debug, Clone, Copy)]
struct Node {
    update: Update,
    prev: u32,
    next: u32,
    obj_prev: u32,
    obj_next: u32,
}

/// Head and tail of one object's chain (both `NIL` when empty). The chain
/// is kept sorted by key, so `tail` is the newest queued update.
#[derive(Debug, Clone, Copy)]
struct ObjChain {
    head: u32,
    tail: u32,
}

const EMPTY_CHAIN: ObjChain = ObjChain {
    head: NIL,
    tail: NIL,
};

/// Outcome of an insert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertOutcome {
    /// Older same-object updates removed by dedup mode.
    pub deduped: usize,
    /// The update discarded because the queue was full (may be the
    /// just-inserted update itself if it was the oldest).
    pub displaced: Option<Update>,
}

/// Generation-ordered bounded buffer of unapplied updates.
///
/// # Example
///
/// ```
/// use strip_db::object::{Importance, ViewObjectId};
/// use strip_db::update::Update;
/// use strip_db::update_queue::UpdateQueue;
/// use strip_sim::time::SimTime;
///
/// let mut q = UpdateQueue::new(100, false);
/// for (seq, gen) in [(0u64, 3.0), (1, 1.0), (2, 2.0)] {
///     q.insert(Update {
///         seq,
///         object: ViewObjectId::new(Importance::Low, seq as u32),
///         generation_ts: SimTime::from_secs(gen),
///         arrival_ts: SimTime::from_secs(gen + 0.1),
///         payload: 0.0,
///         attr_mask: Update::COMPLETE,
///     });
/// }
/// // FIFO service returns the oldest *generation*, not the first arrival.
/// assert_eq!(q.pop_oldest().unwrap().seq, 1);
/// // MA expiry discards from the head in O(expired).
/// assert_eq!(q.discard_expired(SimTime::from_secs(9.1), 7.0), 1);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UpdateQueue {
    nodes: Vec<Node>,
    /// Head of the intrusive free list through `Node::next`.
    free: u32,
    /// Oldest-key node of the global list.
    head: u32,
    /// Newest-key node of the global list.
    tail: u32,
    /// Per-object anchors; slot = `index * 2 + class.index()`.
    chains: Vec<ObjChain>,
    len: usize,
    capacity: usize,
    dedup: bool,
    shed: ShedPolicy,
    overflow_dropped: u64,
    expired_dropped: u64,
    dedup_dropped: u64,
}

impl UpdateQueue {
    /// Creates a queue bounded at `capacity` updates with the paper's
    /// overflow rule (discard the oldest generation). With `dedup` enabled
    /// the hash-index extension keeps at most one (the newest) update per
    /// object.
    #[must_use]
    pub fn new(capacity: usize, dedup: bool) -> Self {
        UpdateQueue::with_shed(capacity, dedup, ShedPolicy::DropOldest)
    }

    /// Creates a queue bounded at `capacity` updates with an explicit
    /// overflow shedding policy.
    #[must_use]
    pub fn with_shed(capacity: usize, dedup: bool, shed: ShedPolicy) -> Self {
        UpdateQueue {
            nodes: Vec::with_capacity(capacity.min(1 << 16)),
            free: NIL,
            head: NIL,
            tail: NIL,
            chains: Vec::new(),
            len: 0,
            capacity,
            dedup,
            shed,
            overflow_dropped: 0,
            expired_dropped: 0,
            dedup_dropped: 0,
        }
    }

    fn key(u: &Update) -> QueueKey {
        (u.generation_ts, u.seq)
    }

    fn slot_of(object: ViewObjectId) -> usize {
        object.index as usize * 2 + object.class.index()
    }

    fn object_at(slot: usize) -> ViewObjectId {
        let class = if slot.is_multiple_of(2) {
            Importance::Low
        } else {
            Importance::High
        };
        ViewObjectId::new(class, (slot / 2) as u32)
    }

    fn chain(&self, object: ViewObjectId) -> ObjChain {
        self.chains
            .get(Self::slot_of(object))
            .copied()
            .unwrap_or(EMPTY_CHAIN)
    }

    fn node_key(&self, idx: u32) -> QueueKey {
        Self::key(&self.nodes[idx as usize].update)
    }

    fn alloc(&mut self, update: Update) -> u32 {
        let fresh = Node {
            update,
            prev: NIL,
            next: NIL,
            obj_prev: NIL,
            obj_next: NIL,
        };
        if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = fresh;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("slab fits in u32 indices");
            self.nodes.push(fresh);
            idx
        }
    }

    /// Threads `update` onto both lists at its key-sorted position.
    fn link(&mut self, update: Update) {
        let key = Self::key(&update);
        let object = update.object;
        let idx = self.alloc(update);
        // Global list: walk back from the tail past larger keys. Streams are
        // nearly generation-sorted, so this is a short hop in practice.
        let mut after = self.tail;
        while after != NIL && self.node_key(after) > key {
            after = self.nodes[after as usize].prev;
        }
        if after == NIL {
            self.nodes[idx as usize].next = self.head;
            if self.head != NIL {
                self.nodes[self.head as usize].prev = idx;
            } else {
                self.tail = idx;
            }
            self.head = idx;
        } else {
            let next = self.nodes[after as usize].next;
            self.nodes[idx as usize].prev = after;
            self.nodes[idx as usize].next = next;
            self.nodes[after as usize].next = idx;
            if next != NIL {
                self.nodes[next as usize].prev = idx;
            } else {
                self.tail = idx;
            }
        }
        // Object chain: same backward walk, usually empty or a single hop.
        let slot = Self::slot_of(object);
        if slot >= self.chains.len() {
            self.chains.resize(slot + 1, EMPTY_CHAIN);
        }
        let mut oafter = self.chains[slot].tail;
        while oafter != NIL && self.node_key(oafter) > key {
            oafter = self.nodes[oafter as usize].obj_prev;
        }
        if oafter == NIL {
            let old_head = self.chains[slot].head;
            self.nodes[idx as usize].obj_next = old_head;
            if old_head != NIL {
                self.nodes[old_head as usize].obj_prev = idx;
            } else {
                self.chains[slot].tail = idx;
            }
            self.chains[slot].head = idx;
        } else {
            let onext = self.nodes[oafter as usize].obj_next;
            self.nodes[idx as usize].obj_prev = oafter;
            self.nodes[idx as usize].obj_next = onext;
            self.nodes[oafter as usize].obj_next = idx;
            if onext != NIL {
                self.nodes[onext as usize].obj_prev = idx;
            } else {
                self.chains[slot].tail = idx;
            }
        }
        self.len += 1;
    }

    /// Detaches node `idx` from both lists and returns it to the free list.
    fn unlink(&mut self, idx: u32) -> Update {
        let node = self.nodes[idx as usize];
        if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
        } else {
            self.tail = node.prev;
        }
        let slot = Self::slot_of(node.update.object);
        if node.obj_prev != NIL {
            self.nodes[node.obj_prev as usize].obj_next = node.obj_next;
        } else {
            self.chains[slot].head = node.obj_next;
        }
        if node.obj_next != NIL {
            self.nodes[node.obj_next as usize].obj_prev = node.obj_prev;
        } else {
            self.chains[slot].tail = node.obj_prev;
        }
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
        self.len -= 1;
        node.update
    }

    /// Enqueues `update`, applying dedup (if enabled) and the overflow
    /// policy.
    pub fn insert(&mut self, update: Update) -> InsertOutcome {
        let mut outcome = InsertOutcome {
            deduped: 0,
            displaced: None,
        };
        if self.dedup {
            let new_key = Self::key(&update);
            let chain = self.chain(update.object);
            // A newer (or equal) update for the same object is already
            // queued: the arrival is worthless — drop it instead.
            if chain.tail != NIL && self.node_key(chain.tail) >= new_key {
                outcome.deduped = 1;
                self.dedup_dropped += 1;
                return outcome;
            }
            // Otherwise every queued same-object update is older (the chain
            // tail is its newest): the arrival supersedes the whole chain.
            let mut cur = chain.head;
            while cur != NIL {
                let next = self.nodes[cur as usize].obj_next;
                self.unlink(cur);
                outcome.deduped += 1;
                self.dedup_dropped += 1;
                cur = next;
            }
        }
        self.link(update);
        if self.len > self.capacity {
            // Shed one queued update — possibly the new arrival itself
            // (it is already linked, so it competes on equal terms).
            let victim = self.overflow_victim();
            outcome.displaced = Some(self.unlink(victim));
            self.overflow_dropped += 1;
        }
        outcome
    }

    /// Picks the node the shedding policy sacrifices on overflow. The
    /// paper's rule ([`ShedPolicy::DropOldest`]) stays O(1); the scanning
    /// policies walk the global list from the oldest generation, which is
    /// fine because this only runs on the overflow path.
    fn overflow_victim(&self) -> u32 {
        match self.shed {
            ShedPolicy::DropOldest => self.head,
            ShedPolicy::DropNewest => self.tail,
            ShedPolicy::DropLowestImportance => {
                let mut cur = self.head;
                while cur != NIL {
                    if self.nodes[cur as usize].update.object.class == Importance::Low {
                        return cur;
                    }
                    cur = self.nodes[cur as usize].next;
                }
                self.head
            }
            ShedPolicy::CoalescePerObject => {
                // A node that is not its object chain's tail is superseded
                // by a newer queued update for the same object; installing
                // it would be wasted work. In dedup mode every node is its
                // chain's tail, so this degenerates to DropOldest.
                let mut cur = self.head;
                while cur != NIL {
                    if self.nodes[cur as usize].obj_next != NIL {
                        return cur;
                    }
                    cur = self.nodes[cur as usize].next;
                }
                self.head
            }
        }
    }

    /// Removes the update with the oldest generation (FIFO service).
    pub fn pop_oldest(&mut self) -> Option<Update> {
        (self.head != NIL).then(|| self.unlink(self.head))
    }

    /// Removes the update with the newest generation (LIFO service).
    pub fn pop_newest(&mut self) -> Option<Update> {
        (self.tail != NIL).then(|| self.unlink(self.tail))
    }

    /// Discards every queued update whose value age exceeds `alpha` at
    /// `now` (MA expiry, performed at scheduling points). Returns how many
    /// were discarded. Because the queue is generation-ordered this only
    /// inspects the head.
    pub fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let mut n = 0;
        while self.head != NIL {
            // Same age test as `Update::expired_at`, so the head check and
            // per-update expiry agree bit-for-bit.
            let gen_ts = self.nodes[self.head as usize].update.generation_ts;
            if now.since(gen_ts) <= alpha {
                break;
            }
            self.unlink(self.head);
            n += 1;
        }
        self.expired_dropped += n as u64;
        n
    }

    /// The newest queued update for `object`, if any (what an On-Demand
    /// refresh or an Unapplied-Update staleness check looks for).
    #[must_use]
    pub fn newest_for(&self, object: ViewObjectId) -> Option<&Update> {
        let tail = self.chain(object).tail;
        (tail != NIL).then(|| &self.nodes[tail as usize].update)
    }

    /// Removes and returns the newest queued update for `object`.
    pub fn take_newest_for(&mut self, object: ViewObjectId) -> Option<Update> {
        let tail = self.chain(object).tail;
        (tail != NIL).then(|| self.unlink(tail))
    }

    /// True if any update for `object` is queued.
    #[must_use]
    pub fn has_pending_for(&self, object: ViewObjectId) -> bool {
        self.chain(object).tail != NIL
    }

    /// Removes the newest update for the object with the highest `score`
    /// (access-driven service, extension): scans the per-object anchors
    /// (O(anchor slots)), breaking score ties by object id so service order
    /// is deterministic.
    pub fn pop_hottest<F>(&mut self, score: F) -> Option<Update>
    where
        F: Fn(ViewObjectId) -> u64,
    {
        // `(score, Reverse(id))` is a strict total order over the distinct
        // queued objects, so the winner is independent of scan order and
        // matches the seed implementation's HashMap-keyed scan.
        let hottest = self
            .chains
            .iter()
            .enumerate()
            .filter(|(_, c)| c.tail != NIL)
            .map(|(slot, _)| Self::object_at(slot))
            .max_by_key(|&id| (score(id), std::cmp::Reverse(id)))?;
        self.take_newest_for(hottest)
    }

    /// Number of queued updates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no updates are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured bound (`UQ_max`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Updates discarded by the overflow policy so far.
    #[must_use]
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }

    /// Updates discarded as MA-expired so far.
    #[must_use]
    pub fn expired_dropped(&self) -> u64 {
        self.expired_dropped
    }

    /// Updates removed as superseded by dedup mode so far.
    #[must_use]
    pub fn dedup_dropped(&self) -> u64 {
        self.dedup_dropped
    }

    /// Iterates queued updates in generation order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let node = &self.nodes[cur as usize];
            cur = node.next;
            Some(&node.update)
        })
    }

    /// Slab high-water mark: how many node slots have ever been allocated
    /// (diagnostic; steady state reuses freed slots instead of growing).
    #[doc(hidden)]
    #[must_use]
    pub fn slab_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Internal consistency check used by tests: both intrusive lists are
    /// sorted, mutually consistent, and describe the same `len` nodes.
    #[doc(hidden)]
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        // Walk the global list: strictly ascending keys, consistent back
        // links, `len` nodes exactly.
        let mut seen = vec![false; self.nodes.len()];
        let mut count = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        let mut last_key = None;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            if node.prev != prev {
                return false;
            }
            let key = Self::key(&node.update);
            if last_key.is_some_and(|k| k >= key) {
                return false;
            }
            last_key = Some(key);
            seen[cur as usize] = true;
            count += 1;
            if count > self.len {
                return false;
            }
            prev = cur;
            cur = node.next;
        }
        if count != self.len || self.tail != prev {
            return false;
        }
        // Walk every object chain: sorted, object-homogeneous, and covering
        // exactly the nodes of the global list.
        let mut chained = 0usize;
        for (slot, chain) in self.chains.iter().enumerate() {
            let object = Self::object_at(slot);
            let mut oprev = NIL;
            let mut cur = chain.head;
            let mut last_key = None;
            while cur != NIL {
                let node = &self.nodes[cur as usize];
                if node.obj_prev != oprev || node.update.object != object || !seen[cur as usize] {
                    return false;
                }
                let key = Self::key(&node.update);
                if last_key.is_some_and(|k| k >= key) {
                    return false;
                }
                last_key = Some(key);
                chained += 1;
                if chained > self.len {
                    return false;
                }
                oprev = cur;
                cur = node.obj_next;
            }
            if chain.tail != oprev {
                return false;
            }
        }
        chained == self.len
    }
}

/// A pair of update queues partitioned by importance (paper §4.2: "It would
/// also be possible to split the update queue into two queues, and to
/// partition updates by their importance. When no transactions were waiting,
/// updates could first be installed out of the high importance queue. This
/// enhancement is a subject for future study.") — implemented here. In
/// unsplit mode it degenerates to a single [`UpdateQueue`].
#[derive(Debug, Clone)]
pub struct DualUpdateQueue {
    /// Low-importance updates — or everything, when not split.
    low: UpdateQueue,
    /// High-importance updates when split mode is on.
    high: Option<UpdateQueue>,
}

impl DualUpdateQueue {
    /// Creates the queue set. With `split`, each partition is bounded at
    /// `capacity` separately (the bound protects memory per queue).
    #[must_use]
    pub fn new(capacity: usize, dedup: bool, split: bool) -> Self {
        DualUpdateQueue::with_shed(capacity, dedup, split, ShedPolicy::DropOldest)
    }

    /// Creates the queue set with an explicit overflow shedding policy
    /// applied to each partition.
    #[must_use]
    pub fn with_shed(capacity: usize, dedup: bool, split: bool, shed: ShedPolicy) -> Self {
        DualUpdateQueue {
            low: UpdateQueue::with_shed(capacity, dedup, shed),
            high: split.then(|| UpdateQueue::with_shed(capacity, dedup, shed)),
        }
    }

    fn queue_for(&self, object: ViewObjectId) -> &UpdateQueue {
        match (&self.high, object.class) {
            (Some(high), crate::object::Importance::High) => high,
            _ => &self.low,
        }
    }

    fn queue_for_mut(&mut self, object: ViewObjectId) -> &mut UpdateQueue {
        match (&mut self.high, object.class) {
            (Some(high), crate::object::Importance::High) => high,
            _ => &mut self.low,
        }
    }

    /// Enqueues an update into its partition.
    pub fn insert(&mut self, update: Update) -> InsertOutcome {
        self.queue_for_mut(update.object).insert(update)
    }

    /// Removes the next update to install: high-importance partition first,
    /// then low, each under the given discipline (`newest_first` = LIFO).
    pub fn pop(&mut self, newest_first: bool) -> Option<Update> {
        let pick = |q: &mut UpdateQueue| {
            if newest_first {
                q.pop_newest()
            } else {
                q.pop_oldest()
            }
        };
        if let Some(high) = self.high.as_mut() {
            if let Some(u) = pick(high) {
                return Some(u);
            }
        }
        pick(&mut self.low)
    }

    /// Discards MA-expired updates from both partitions.
    pub fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let mut n = self.low.discard_expired(now, alpha);
        if let Some(high) = self.high.as_mut() {
            n += high.discard_expired(now, alpha);
        }
        n
    }

    /// The newest queued update for `object`.
    #[must_use]
    pub fn newest_for(&self, object: ViewObjectId) -> Option<&Update> {
        self.queue_for(object).newest_for(object)
    }

    /// Removes and returns the newest queued update for `object`.
    pub fn take_newest_for(&mut self, object: ViewObjectId) -> Option<Update> {
        self.queue_for_mut(object).take_newest_for(object)
    }

    /// Access-driven pop: hottest object first, high partition taking
    /// precedence in split mode.
    pub fn pop_hottest<F>(&mut self, score: F) -> Option<Update>
    where
        F: Fn(ViewObjectId) -> u64,
    {
        if let Some(high) = self.high.as_mut() {
            if let Some(u) = high.pop_hottest(&score) {
                return Some(u);
            }
        }
        self.low.pop_hottest(score)
    }

    /// Total queued updates across partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.low.len() + self.high.as_ref().map_or(0, UpdateQueue::len)
    }

    /// True when both partitions are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total overflow discards.
    #[must_use]
    pub fn overflow_dropped(&self) -> u64 {
        self.low.overflow_dropped() + self.high.as_ref().map_or(0, UpdateQueue::overflow_dropped)
    }

    /// Total MA-expiry discards.
    #[must_use]
    pub fn expired_dropped(&self) -> u64 {
        self.low.expired_dropped() + self.high.as_ref().map_or(0, UpdateQueue::expired_dropped)
    }

    /// Total dedup removals.
    #[must_use]
    pub fn dedup_dropped(&self) -> u64 {
        self.low.dedup_dropped() + self.high.as_ref().map_or(0, UpdateQueue::dedup_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Importance;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn upd(seq: u64, obj_idx: u32, gen: f64) -> Update {
        Update {
            seq,
            object: ViewObjectId::new(Importance::Low, obj_idx),
            generation_ts: t(gen),
            arrival_ts: t(gen + 0.05),
            payload: seq as f64,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn generation_order_not_arrival_order() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 5.0)); // arrives first, generated later
        q.insert(upd(1, 1, 2.0)); // arrives second, generated earlier
        assert_eq!(q.pop_oldest().unwrap().seq, 1);
        assert_eq!(q.pop_oldest().unwrap().seq, 0);
    }

    #[test]
    fn lifo_pops_newest_generation() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 3.0));
        q.insert(upd(2, 2, 2.0));
        assert_eq!(q.pop_newest().unwrap().seq, 1);
        assert_eq!(q.pop_newest().unwrap().seq, 2);
        assert_eq!(q.pop_newest().unwrap().seq, 0);
        assert!(q.pop_newest().is_none());
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut q = UpdateQueue::new(2, false);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 2.0));
        let out = q.insert(upd(2, 2, 3.0));
        assert_eq!(out.displaced.unwrap().seq, 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.overflow_dropped(), 1);
        assert!(q.check_invariants());
    }

    #[test]
    fn overflow_can_discard_the_arrival_itself() {
        let mut q = UpdateQueue::new(2, false);
        q.insert(upd(0, 0, 5.0));
        q.insert(upd(1, 1, 6.0));
        // The arrival is the oldest generation, so it is the one discarded.
        let out = q.insert(upd(2, 2, 1.0));
        assert_eq!(out.displaced.unwrap().seq, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn expiry_discards_only_old_generations() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 4.0));
        q.insert(upd(2, 2, 9.5));
        // At t = 10 with alpha = 7, generations before 3.0 expire.
        assert_eq!(q.discard_expired(t(10.0), 7.0), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.expired_dropped(), 1);
        // Exactly at the boundary (age == alpha) is not expired.
        assert_eq!(q.discard_expired(t(11.0), 7.0), 0);
        assert_eq!(q.discard_expired(t(11.1), 7.0), 1);
        assert!(q.check_invariants());
    }

    #[test]
    fn newest_for_object_across_duplicates() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 7, 1.0));
        q.insert(upd(1, 7, 3.0));
        q.insert(upd(2, 7, 2.0));
        q.insert(upd(3, 8, 9.0));
        assert_eq!(
            q.newest_for(ViewObjectId::new(Importance::Low, 7))
                .unwrap()
                .seq,
            1
        );
        let taken = q
            .take_newest_for(ViewObjectId::new(Importance::Low, 7))
            .unwrap();
        assert_eq!(taken.seq, 1);
        // Older duplicates remain when dedup is off.
        assert!(q.has_pending_for(ViewObjectId::new(Importance::Low, 7)));
        assert_eq!(q.len(), 3);
        assert!(q.check_invariants());
    }

    #[test]
    fn dedup_keeps_only_newest_per_object() {
        let mut q = UpdateQueue::new(10, true);
        q.insert(upd(0, 7, 1.0));
        q.insert(upd(1, 7, 2.0));
        let out = q.insert(upd(2, 7, 3.0));
        assert_eq!(out.deduped, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dedup_dropped(), 2);
        assert_eq!(
            q.newest_for(ViewObjectId::new(Importance::Low, 7))
                .unwrap()
                .seq,
            2
        );
        assert!(q.check_invariants());
    }

    #[test]
    fn dedup_discards_late_older_arrival() {
        let mut q = UpdateQueue::new(10, true);
        q.insert(upd(0, 7, 5.0));
        // An older generation arriving late is itself worthless: dropped.
        let out = q.insert(upd(1, 7, 2.0));
        assert_eq!(out.deduped, 1);
        assert!(out.displaced.is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.newest_for(ViewObjectId::new(Importance::Low, 7))
                .unwrap()
                .seq,
            0
        );
        assert_eq!(q.dedup_dropped(), 1);
    }

    #[test]
    fn missing_object_lookups() {
        let mut q = UpdateQueue::new(4, false);
        let ghost = ViewObjectId::new(Importance::High, 99);
        assert!(q.newest_for(ghost).is_none());
        assert!(q.take_newest_for(ghost).is_none());
        assert!(!q.has_pending_for(ghost));
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 4);
    }

    fn hupd(seq: u64, obj_idx: u32, gen: f64) -> Update {
        Update {
            seq,
            object: ViewObjectId::new(Importance::High, obj_idx),
            generation_ts: t(gen),
            arrival_ts: t(gen + 0.05),
            payload: seq as f64,
            attr_mask: Update::COMPLETE,
        }
    }

    #[test]
    fn dual_unsplit_behaves_like_single_queue() {
        let mut q = DualUpdateQueue::new(10, false, false);
        q.insert(upd(0, 0, 2.0));
        q.insert(hupd(1, 0, 1.0));
        // FIFO over the single merged queue: oldest generation first.
        assert_eq!(q.pop(false).unwrap().seq, 1);
        assert_eq!(q.pop(false).unwrap().seq, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn dual_split_serves_high_importance_first() {
        let mut q = DualUpdateQueue::new(10, false, true);
        q.insert(upd(0, 0, 1.0)); // low, oldest generation overall
        q.insert(hupd(1, 0, 5.0)); // high
        q.insert(hupd(2, 1, 3.0)); // high
                                   // High partition drains first (FIFO within it), then low.
        assert_eq!(q.pop(false).unwrap().seq, 2);
        assert_eq!(q.pop(false).unwrap().seq, 1);
        assert_eq!(q.pop(false).unwrap().seq, 0);
        assert!(q.pop(false).is_none());
    }

    #[test]
    fn dual_split_routes_lookups_by_class() {
        let mut q = DualUpdateQueue::new(10, false, true);
        q.insert(upd(0, 7, 1.0));
        q.insert(hupd(1, 7, 2.0));
        assert_eq!(
            q.newest_for(ViewObjectId::new(Importance::Low, 7))
                .unwrap()
                .seq,
            0
        );
        assert_eq!(
            q.newest_for(ViewObjectId::new(Importance::High, 7))
                .unwrap()
                .seq,
            1
        );
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.take_newest_for(ViewObjectId::new(Importance::High, 7))
                .unwrap()
                .seq,
            1
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn dual_split_expiry_and_counters_span_partitions() {
        let mut q = DualUpdateQueue::new(2, false, true);
        q.insert(upd(0, 0, 1.0));
        q.insert(hupd(1, 0, 1.5));
        q.insert(upd(2, 1, 2.0));
        q.insert(upd(3, 2, 3.0)); // low partition overflows (cap 2)
        assert_eq!(q.overflow_dropped(), 1);
        assert_eq!(q.discard_expired(t(10.0), 7.0), 2); // gens 1.5 and 2.0
        assert_eq!(q.expired_dropped(), 2);
    }

    #[test]
    fn pop_hottest_orders_by_score_then_id() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 3, 1.0));
        q.insert(upd(1, 3, 2.0)); // newest for object 3
        q.insert(upd(2, 5, 0.5));
        q.insert(upd(3, 7, 3.0));
        let score = |id: ViewObjectId| match id.index {
            5 => 10u64,
            3 => 10,
            _ => 1,
        };
        // Tie between objects 3 and 5 broken by the smaller id; newest
        // update for that object pops. Object 3 still holds its older
        // update, so it wins again before object 5's score drops out.
        assert_eq!(q.pop_hottest(score).unwrap().seq, 1);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 0);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 2);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 3);
        assert!(q.pop_hottest(score).is_none());
        assert!(q.check_invariants());
    }

    #[test]
    fn dual_pop_hottest_prefers_high_partition() {
        let mut q = DualUpdateQueue::new(10, false, true);
        q.insert(upd(0, 0, 1.0)); // low, hot
        q.insert(hupd(1, 9, 1.0)); // high, cold
        let score = |id: ViewObjectId| u64::from(id.class == Importance::Low) * 100;
        // Split mode: high partition drains first regardless of heat.
        assert_eq!(q.pop_hottest(score).unwrap().seq, 1);
        assert_eq!(q.pop_hottest(score).unwrap().seq, 0);
    }

    #[test]
    fn shed_drop_newest_rejects_freshest_generation() {
        let mut q = UpdateQueue::with_shed(2, false, ShedPolicy::DropNewest);
        q.insert(upd(0, 0, 1.0));
        q.insert(upd(1, 1, 2.0));
        // The arrival has the newest generation, so it is the victim.
        let out = q.insert(upd(2, 2, 3.0));
        assert_eq!(out.displaced.unwrap().seq, 2);
        // An arrival older than the queued tail evicts that tail instead.
        let out = q.insert(upd(3, 3, 0.5));
        assert_eq!(out.displaced.unwrap().seq, 1);
        assert_eq!(q.overflow_dropped(), 2);
        assert!(q.check_invariants());
    }

    #[test]
    fn shed_drop_lowest_importance_spares_high() {
        let mut q = UpdateQueue::with_shed(2, false, ShedPolicy::DropLowestImportance);
        q.insert(hupd(0, 0, 1.0));
        q.insert(upd(1, 1, 2.0));
        // Oldest low-importance update is shed even though a high one is
        // older.
        let out = q.insert(hupd(2, 2, 3.0));
        assert_eq!(out.displaced.unwrap().seq, 1);
        // All-high queue falls back to the oldest overall.
        let out = q.insert(hupd(3, 3, 4.0));
        assert_eq!(out.displaced.unwrap().seq, 0);
        assert!(q.check_invariants());
    }

    #[test]
    fn shed_coalesce_prefers_superseded_updates() {
        let mut q = UpdateQueue::with_shed(3, false, ShedPolicy::CoalescePerObject);
        q.insert(upd(0, 7, 1.0)); // superseded by seq 2
        q.insert(upd(1, 8, 2.0));
        q.insert(upd(2, 7, 3.0));
        let out = q.insert(upd(3, 9, 4.0));
        assert_eq!(out.displaced.unwrap().seq, 0);
        // No superseded update left: falls back to the oldest generation.
        let out = q.insert(upd(4, 10, 5.0));
        assert_eq!(out.displaced.unwrap().seq, 1);
        assert!(q.check_invariants());
    }

    #[test]
    fn iter_is_generation_ordered() {
        let mut q = UpdateQueue::new(10, false);
        q.insert(upd(0, 0, 3.0));
        q.insert(upd(1, 1, 1.0));
        q.insert(upd(2, 2, 2.0));
        let gens: Vec<f64> = q.iter().map(|u| u.generation_ts.as_secs()).collect();
        assert_eq!(gens, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut q = UpdateQueue::new(1000, false);
        // Churn far more updates than ever coexist: the arena must stay at
        // the high-water mark instead of growing per insert.
        for i in 0..10_000u64 {
            q.insert(upd(i, (i % 16) as u32, i as f64 * 0.01));
            if i >= 8 {
                q.pop_oldest();
            }
        }
        assert!(q.check_invariants());
        assert!(q.slab_slots() <= 16, "arena grew to {}", q.slab_slots());
    }

    #[test]
    fn matches_reference_on_mixed_workload() {
        use super::reference::ReferenceUpdateQueue;
        // Deterministic pseudo-random interleaving of every operation,
        // checked step by step against the seed implementation.
        let mut slab = UpdateQueue::new(8, true);
        let mut oracle = ReferenceUpdateQueue::new(8, true);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seq in 0..4_000u64 {
            let r = rng();
            let obj = ViewObjectId::new(
                if r & 1 == 0 {
                    Importance::Low
                } else {
                    Importance::High
                },
                ((r >> 1) % 6) as u32,
            );
            let gen = (rng() % 1_000) as f64 * 0.1;
            match rng() % 6 {
                0 | 1 => {
                    let u = Update {
                        seq,
                        object: obj,
                        generation_ts: t(gen),
                        arrival_ts: t(gen + 0.05),
                        payload: seq as f64,
                        attr_mask: Update::COMPLETE,
                    };
                    assert_eq!(slab.insert(u), oracle.insert(u));
                }
                2 => assert_eq!(slab.pop_oldest(), oracle.pop_oldest()),
                3 => assert_eq!(slab.pop_newest(), oracle.pop_newest()),
                4 => assert_eq!(slab.take_newest_for(obj), oracle.take_newest_for(obj)),
                _ => assert_eq!(
                    slab.discard_expired(t(gen), 20.0),
                    oracle.discard_expired(t(gen), 20.0)
                ),
            }
            assert_eq!(slab.len(), oracle.len());
        }
        assert!(slab.check_invariants());
        assert!(slab.iter().eq(oracle.iter()));
    }
}
