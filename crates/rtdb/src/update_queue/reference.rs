//! The seed `BTreeMap`-based update queue, kept verbatim as a baseline.
//!
//! [`ReferenceUpdateQueue`] is the repository's original implementation of
//! the generation-ordered update queue: a `BTreeMap<QueueKey, Update>` for
//! global order plus a `HashMap<ViewObjectId, BTreeSet<QueueKey>>` per-object
//! index (O(log n) everywhere, one `Vec` allocation per dedup sweep). It is
//! **not** used by the simulator — the slab-backed
//! [`UpdateQueue`](super::UpdateQueue) replaced it — but it remains here as
//! (a) the oracle for the equivalence proptests and (b) the baseline the
//! micro benchmarks measure speedups against.

// lint: allow-file(nondeterministic-order, reason=seed oracle kept verbatim; the HashMap index is keyed lookups only and is never iterated)

use std::collections::{BTreeMap, BTreeSet, HashMap};

use strip_sim::time::SimTime;

use super::InsertOutcome;
use crate::object::ViewObjectId;
use crate::update::Update;

/// Key ordering queued updates by generation time (sequence number breaks
/// ties deterministically).
type QueueKey = (SimTime, u64);

/// The seed generation-ordered bounded buffer (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ReferenceUpdateQueue {
    by_generation: BTreeMap<QueueKey, Update>,
    per_object: HashMap<ViewObjectId, BTreeSet<QueueKey>>,
    capacity: usize,
    dedup: bool,
    overflow_dropped: u64,
    expired_dropped: u64,
    dedup_dropped: u64,
}

impl ReferenceUpdateQueue {
    /// Creates a queue bounded at `capacity` updates; `dedup` enables the
    /// hash-index extension (at most one queued update per object).
    #[must_use]
    pub fn new(capacity: usize, dedup: bool) -> Self {
        ReferenceUpdateQueue {
            by_generation: BTreeMap::new(),
            per_object: HashMap::new(),
            capacity,
            dedup,
            overflow_dropped: 0,
            expired_dropped: 0,
            dedup_dropped: 0,
        }
    }

    fn key(u: &Update) -> QueueKey {
        (u.generation_ts, u.seq)
    }

    fn unlink(&mut self, key: QueueKey) -> Option<Update> {
        let update = self.by_generation.remove(&key)?;
        if let Some(set) = self.per_object.get_mut(&update.object) {
            set.remove(&key);
            if set.is_empty() {
                self.per_object.remove(&update.object);
            }
        }
        Some(update)
    }

    fn link(&mut self, update: Update) {
        let key = Self::key(&update);
        self.per_object
            .entry(update.object)
            .or_default()
            .insert(key);
        let prev = self.by_generation.insert(key, update);
        debug_assert!(prev.is_none(), "duplicate queue key");
    }

    /// Enqueues `update`, applying dedup (if enabled) and the overflow
    /// policy.
    pub fn insert(&mut self, update: Update) -> InsertOutcome {
        let mut outcome = InsertOutcome {
            deduped: 0,
            displaced: None,
        };
        if self.dedup {
            let new_key = Self::key(&update);
            // A newer (or equal) update for the same object is already
            // queued: the arrival is worthless — drop it instead.
            let superseded = self
                .per_object
                .get(&update.object)
                .and_then(|set| set.iter().next_back())
                .is_some_and(|&newest| newest >= new_key);
            if superseded {
                outcome.deduped = 1;
                self.dedup_dropped += 1;
                return outcome;
            }
            // Otherwise remove the queued updates this one supersedes.
            let older: Vec<QueueKey> = self
                .per_object
                .get(&update.object)
                .map(|set| set.range(..new_key).copied().collect())
                .unwrap_or_default();
            for key in older {
                self.unlink(key);
                outcome.deduped += 1;
                self.dedup_dropped += 1;
            }
        }
        self.link(update);
        if self.by_generation.len() > self.capacity {
            // Discard the oldest update (§4.2) — possibly the new arrival.
            let oldest_key = *self
                .by_generation
                .keys()
                .next()
                .expect("non-empty queue has an oldest entry");
            outcome.displaced = self.unlink(oldest_key);
            self.overflow_dropped += 1;
        }
        outcome
    }

    /// Removes the update with the oldest generation (FIFO service).
    pub fn pop_oldest(&mut self) -> Option<Update> {
        let key = *self.by_generation.keys().next()?;
        self.unlink(key)
    }

    /// Removes the update with the newest generation (LIFO service).
    pub fn pop_newest(&mut self) -> Option<Update> {
        let key = *self.by_generation.keys().next_back()?;
        self.unlink(key)
    }

    /// Discards every queued update whose value age exceeds `alpha` at
    /// `now`; returns how many were discarded.
    pub fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let mut n = 0;
        while let Some((&(gen_ts, seq), _)) = self.by_generation.iter().next() {
            if now.since(gen_ts) <= alpha {
                break;
            }
            self.unlink((gen_ts, seq));
            n += 1;
        }
        self.expired_dropped += n as u64;
        n
    }

    /// The newest queued update for `object`, if any.
    #[must_use]
    pub fn newest_for(&self, object: ViewObjectId) -> Option<&Update> {
        let key = *self.per_object.get(&object)?.iter().next_back()?;
        self.by_generation.get(&key)
    }

    /// Removes and returns the newest queued update for `object`.
    pub fn take_newest_for(&mut self, object: ViewObjectId) -> Option<Update> {
        let key = *self.per_object.get(&object)?.iter().next_back()?;
        self.unlink(key)
    }

    /// True if any update for `object` is queued.
    #[must_use]
    pub fn has_pending_for(&self, object: ViewObjectId) -> bool {
        self.per_object.contains_key(&object)
    }

    /// Removes the newest update for the object with the highest `score`,
    /// breaking score ties by the smaller object id.
    pub fn pop_hottest<F>(&mut self, score: F) -> Option<Update>
    where
        F: Fn(ViewObjectId) -> u64,
    {
        let hottest = self
            .per_object
            .keys()
            .copied()
            .max_by_key(|&id| (score(id), std::cmp::Reverse(id)))?;
        self.take_newest_for(hottest)
    }

    /// Number of queued updates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_generation.len()
    }

    /// True when no updates are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_generation.is_empty()
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Updates discarded by the overflow policy so far.
    #[must_use]
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }

    /// Updates discarded as MA-expired so far.
    #[must_use]
    pub fn expired_dropped(&self) -> u64 {
        self.expired_dropped
    }

    /// Updates removed as superseded by dedup mode so far.
    #[must_use]
    pub fn dedup_dropped(&self) -> u64 {
        self.dedup_dropped
    }

    /// Iterates queued updates in generation order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.by_generation.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Importance;

    #[test]
    fn reference_keeps_seed_semantics() {
        let mut q = ReferenceUpdateQueue::new(2, true);
        let mk = |seq: u64, idx: u32, gen: f64| Update {
            seq,
            object: ViewObjectId::new(Importance::Low, idx),
            generation_ts: SimTime::from_secs(gen),
            arrival_ts: SimTime::from_secs(gen + 0.05),
            payload: seq as f64,
            attr_mask: Update::COMPLETE,
        };
        q.insert(mk(0, 1, 1.0));
        let out = q.insert(mk(1, 1, 2.0));
        assert_eq!(out.deduped, 1);
        assert_eq!(q.len(), 1);
        q.insert(mk(2, 2, 3.0));
        let out = q.insert(mk(3, 3, 4.0));
        assert_eq!(out.displaced.unwrap().seq, 1);
        assert_eq!(q.pop_oldest().unwrap().seq, 2);
        assert_eq!(q.pop_newest().unwrap().seq, 3);
        assert!(q.is_empty());
    }
}
