//! Property tests for the derived-view DAG (DESIGN.md §17): delta
//! conservation under random generated DAGs and interleavings, and the
//! incremental path against the full-recompute oracle at quiescent points.

use proptest::prelude::*;
use strip_db::dag::{full_recompute, generate_dag, DagSpec, DagState};
use strip_db::object::{Importance, ViewObjectId};
use strip_db::store::Store;
use strip_db::update::Update;
use strip_sim::rng::Xoshiro256pp;
use strip_sim::time::SimTime;

const N_LOW: u32 = 8;
const N_HIGH: u32 = 4;

fn object_for(k: u32) -> ViewObjectId {
    let k = k % (N_LOW + N_HIGH);
    if k < N_LOW {
        ViewObjectId::new(Importance::Low, k)
    } else {
        ViewObjectId::new(Importance::High, k - N_LOW)
    }
}

/// One step of the random interleaving: install a base update (and
/// propagate it into the DAG) or apply the next pending delta.
#[derive(Debug, Clone, Copy)]
enum Step {
    Install { obj: u32, payload_milli: i32 },
    ApplyNext,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u32..(N_LOW + N_HIGH), -5_000i32..5_000)
            .prop_map(|(obj, payload_milli)| { Step::Install { obj, payload_milli } }),
        Just(Step::ApplyNext),
    ]
}

fn shape_strategy() -> impl Strategy<Value = (u32, u32, u32)> {
    (1u32..4, 1u32..6, 1u32..4)
}

/// Runs the interleaving over a generated DAG, asserting per-step delta
/// conservation, and returns the final `(store, state)` pair.
fn drive(dag: &strip_db::dag::ViewDag, max_pending: u32, steps: &[Step]) -> (Store, DagState) {
    let mut store = Store::new(N_LOW, N_HIGH, 0, SimTime::ZERO);
    let mut state = DagState::new(dag, &store, max_pending);
    let mut seq = 0u64;
    for (i, step) in steps.iter().enumerate() {
        let now = SimTime::from_secs(i as f64 * 0.01);
        match *step {
            Step::Install { obj, payload_milli } => {
                seq += 1;
                let object = object_for(obj);
                let payload = f64::from(payload_milli) / 1_000.0;
                store.install(&Update {
                    seq,
                    object,
                    generation_ts: now,
                    arrival_ts: now,
                    payload,
                    attr_mask: Update::COMPLETE,
                });
                state.on_base_install(dag, object, payload, now);
            }
            Step::ApplyNext => {
                if let Some(node) = state.next_pending() {
                    assert!(state.apply(dag, &store, node, now).is_some());
                }
            }
        }
        let s = state.stats;
        assert_eq!(
            s.enqueued,
            s.applied + s.coalesced + s.shed + state.pending_len() as u64,
            "conservation broke at step {i}"
        );
    }
    (store, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a pending bound the DAG can never hit (it is keyed by node, so
    /// at most `depth × width` entries exist), no delta is ever shed:
    /// draining to quiescence must reproduce the full-recompute oracle
    /// bit for bit with zero transitive staleness, and every enqueue ends
    /// applied or coalesced.
    #[test]
    fn quiescent_incremental_matches_full_recompute(
        shape in shape_strategy(),
        dag_seed in 0u64..1_000,
        steps in prop::collection::vec(step_strategy(), 1..120),
    ) {
        let (depth, width, fanout) = shape;
        let spec = DagSpec { depth, width, fanout, ..DagSpec::default() };
        let mut dag_rng = Xoshiro256pp::seed_from_u64(dag_seed).substream(0xDA6);
        let dag = generate_dag(&spec, N_LOW, N_HIGH, &mut dag_rng);
        let roomy = depth * width + 1;
        let (store, mut state) = drive(&dag, roomy, &steps);
        let end = SimTime::from_secs(1e6);
        while let Some(node) = state.next_pending() {
            prop_assert!(state.apply(&dag, &store, node, end).is_some());
        }
        prop_assert_eq!(state.pending_len(), 0);
        prop_assert_eq!(state.stale_count(), 0, "quiescent DAG must be fresh");
        let oracle = full_recompute(&dag, &store);
        for (node, expect) in oracle.iter().enumerate() {
            prop_assert_eq!(
                state.value(node as u32).to_bits(),
                expect.to_bits(),
                "node {} diverged from the full-recompute oracle",
                node
            );
        }
        let s = state.stats;
        prop_assert_eq!(s.shed, 0, "roomy bound must never shed");
        prop_assert_eq!(s.enqueued, s.applied + s.coalesced);
    }

    /// With a tight pending bound the interleaving sheds deltas; the
    /// conservation identity must keep holding through shed and drain
    /// (shed deltas are *lost work*, accounted but never applied).
    #[test]
    fn tight_pending_bound_sheds_but_conserves(
        shape in shape_strategy(),
        dag_seed in 0u64..1_000,
        steps in prop::collection::vec(step_strategy(), 30..120),
    ) {
        let (depth, width, fanout) = shape;
        let spec = DagSpec { depth, width, fanout, ..DagSpec::default() };
        let mut dag_rng = Xoshiro256pp::seed_from_u64(dag_seed).substream(0xDA6);
        let dag = generate_dag(&spec, N_LOW, N_HIGH, &mut dag_rng);
        let (store, mut state) = drive(&dag, 1, &steps);
        let end = SimTime::from_secs(1e6);
        while let Some(node) = state.next_pending() {
            prop_assert!(state.apply(&dag, &store, node, end).is_some());
        }
        let s = state.stats;
        prop_assert_eq!(s.enqueued, s.applied + s.coalesced + s.shed);
    }
}
