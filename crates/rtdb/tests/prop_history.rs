//! Property tests: the history store against a brute-force model that keeps
//! every version and recomputes retention/queries from scratch.

use proptest::prelude::*;
use strip_db::history::{HistoryPolicy, HistoryStore};
use strip_db::object::{Importance, ViewObjectId};
use strip_sim::time::SimTime;

fn t_ms(ms: u32) -> SimTime {
    SimTime::from_secs(f64::from(ms) / 1000.0)
}

/// Reference model: unbounded version lists, pruning recomputed on demand.
/// Ages use the same f64 arithmetic as the store (`SimTime::since`), so the
/// two agree bit-for-bit at retention boundaries.
struct Model {
    versions: Vec<Vec<(u32, f64)>>, // per object: (gen_ms, payload)
    retention_secs: f64,
    cap: usize,
}

impl Model {
    fn record(&mut self, obj: usize, gen_ms: u32, payload: f64) {
        let chain = &mut self.versions[obj];
        chain.push((gen_ms, payload));
        // Age pruning relative to the newest generation, keep >= 1.
        let newest = f64::from(gen_ms) / 1000.0;
        while chain.len() > 1 && newest - f64::from(chain[0].0) / 1000.0 > self.retention_secs {
            chain.remove(0);
        }
        while chain.len() > self.cap.max(1) {
            chain.remove(0);
        }
    }

    fn value_as_of(&self, obj: usize, t: u32) -> Option<f64> {
        let chain = &self.versions[obj];
        let first = chain.first()?;
        if t < first.0 {
            return None;
        }
        chain
            .iter()
            .rev()
            .find(|(gen, _)| *gen <= t)
            .map(|(_, p)| *p)
    }

    fn len(&self, obj: usize) -> usize {
        self.versions[obj].len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn history_matches_model(
        // (obj, gen_gap_ms, payload, query_offset_ms)
        ops in prop::collection::vec((0usize..4, 1u32..2_000, -100f64..100.0, 0u32..5_000), 1..120),
        retention_ms in 500u32..8_000,
        cap in 1usize..20,
    ) {
        let policy = HistoryPolicy {
            retention_secs: f64::from(retention_ms) / 1000.0,
            max_entries_per_object: cap,
        };
        let mut store = HistoryStore::new(policy, 4, 0);
        let mut model = Model {
            versions: vec![Vec::new(); 4],
            retention_secs: f64::from(retention_ms) / 1000.0,
            cap,
        };
        // Generations must increase per object (the store's worthiness
        // check guarantees this in the real system).
        let mut clock = [0u32; 4];
        for (obj, gap, payload, query_off) in ops {
            clock[obj] += gap;
            let gen = clock[obj];
            let id = ViewObjectId::new(Importance::Low, obj as u32);
            store.record(id, t_ms(gen), payload);
            model.record(obj, gen, payload);
            prop_assert_eq!(store.chain_len(id), model.len(obj), "chain length");
            // Query at a random instant around the recorded era. The exact
            // retention boundary (age == retention) is a measure-zero tie
            // under ms-grid arithmetic via f64; skip it.
            let q = gen.saturating_sub(query_off);
            let got = store.value_as_of(id, t_ms(q)).map(|v| v.payload);
            let want = model.value_as_of(obj, q);
            prop_assert_eq!(got, want, "as-of {} on object {}", q, obj);
        }
        // Global accounting.
        let retained: usize = (0..4)
            .map(|o| store.chain_len(ViewObjectId::new(Importance::Low, o as u32)))
            .sum();
        prop_assert_eq!(retained, store.total_entries());
        prop_assert_eq!(store.appends(), store.pruned() + retained as u64);
    }
}
