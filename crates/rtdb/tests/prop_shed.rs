//! Property tests for the bounded-queue shedding policies (robustness
//! extension): every received update must land in exactly one terminal
//! bucket, for every [`ShedPolicy`], under arbitrary operation sequences.
//!
//! Queue-level mirror of the controller's `UpdateCounts::terminal_total`
//! conservation law:
//!
//! ```text
//! received == applied (popped) + still queued
//!           + overflow_dropped + expired_dropped + dedup_dropped
//! ```

use proptest::prelude::*;
use strip_db::object::{Importance, ViewObjectId};
use strip_db::osqueue::OsQueue;
use strip_db::shed::ShedPolicy;
use strip_db::update::Update;
use strip_db::update_queue::UpdateQueue;
use strip_sim::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Insert { obj: u32, high: bool, gen_ms: u32 },
    PopOldest,
    PopNewest,
    TakeNewestFor { obj: u32, high: bool },
    DiscardExpired { now_ms: u32, alpha_ms: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let id = || (0u32..10, proptest::bool::ANY);
    prop_oneof![
        6 => (id(), 0u32..10_000)
            .prop_map(|((obj, high), gen_ms)| Op::Insert { obj, high, gen_ms }),
        2 => Just(Op::PopOldest),
        1 => Just(Op::PopNewest),
        2 => id().prop_map(|(obj, high)| Op::TakeNewestFor { obj, high }),
        1 => (0u32..12_000, 100u32..5_000)
            .prop_map(|(now_ms, alpha_ms)| Op::DiscardExpired { now_ms, alpha_ms }),
    ]
}

fn vid(obj: u32, high: bool) -> ViewObjectId {
    let class = if high {
        Importance::High
    } else {
        Importance::Low
    };
    ViewObjectId::new(class, obj)
}

fn mk_update(seq: u64, obj: u32, high: bool, gen_ms: u32) -> Update {
    Update {
        seq,
        object: vid(obj, high),
        generation_ts: SimTime::from_secs(f64::from(gen_ms) / 1000.0),
        arrival_ts: SimTime::from_secs(f64::from(gen_ms) / 1000.0 + 0.05),
        payload: f64::from(seq as u32),
        attr_mask: Update::COMPLETE,
    }
}

fn key(u: &Update) -> (SimTime, u64) {
    (u.generation_ts, u.seq)
}

/// Drives one update queue through `ops` and checks conservation plus the
/// policy-specific eviction guarantee after every step.
fn run_conservation(ops: Vec<Op>, cap: usize, dedup: bool, shed: ShedPolicy) {
    let mut q = UpdateQueue::with_shed(cap, dedup, shed);
    let mut seq = 0u64;
    let mut received = 0u64;
    let mut applied = 0u64;
    for op in ops {
        match op {
            Op::Insert { obj, high, gen_ms } => {
                let u = mk_update(seq, obj, high, gen_ms);
                seq += 1;
                received += 1;
                let before_keys: Vec<_> = q.iter().map(key).collect();
                let outcome = q.insert(u);
                if let Some(victim) = outcome.displaced {
                    match shed {
                        ShedPolicy::DropOldest => {
                            // The victim has the smallest key of queue+arrival.
                            let min = before_keys
                                .iter()
                                .copied()
                                .chain(std::iter::once(key(&u)))
                                .min()
                                .expect("non-empty on overflow");
                            assert_eq!(key(&victim), min, "DropOldest must evict the oldest");
                        }
                        ShedPolicy::DropNewest => {
                            let max = before_keys
                                .iter()
                                .copied()
                                .chain(std::iter::once(key(&u)))
                                .max()
                                .expect("non-empty on overflow");
                            assert_eq!(key(&victim), max, "DropNewest must evict the newest");
                        }
                        ShedPolicy::DropLowestImportance => {
                            // A high-importance victim means no low-importance
                            // update was available to sacrifice.
                            if victim.object.class == Importance::High {
                                assert!(
                                    q.iter().all(|e| e.object.class == Importance::High),
                                    "evicted high-importance while low was queued"
                                );
                            }
                        }
                        ShedPolicy::CoalescePerObject => {
                            // The victim is superseded by a newer queued update
                            // for its object, or (no superseded entry) it falls
                            // back to the oldest generation.
                            let superseded = q
                                .iter()
                                .any(|e| e.object == victim.object && key(e) > key(&victim));
                            let min = before_keys
                                .iter()
                                .copied()
                                .chain(std::iter::once(key(&u)))
                                .min()
                                .expect("non-empty on overflow");
                            assert!(
                                superseded || key(&victim) == min,
                                "Coalesce victim neither superseded nor oldest"
                            );
                        }
                    }
                }
            }
            Op::PopOldest => applied += u64::from(q.pop_oldest().is_some()),
            Op::PopNewest => applied += u64::from(q.pop_newest().is_some()),
            Op::TakeNewestFor { obj, high } => {
                applied += u64::from(q.take_newest_for(vid(obj, high)).is_some());
            }
            Op::DiscardExpired { now_ms, alpha_ms } => {
                let now = SimTime::from_secs(f64::from(now_ms) / 1000.0);
                q.discard_expired(now, f64::from(alpha_ms) / 1000.0);
            }
        }
        // Conservation: every received update is in exactly one bucket.
        let terminal = applied
            + q.len() as u64
            + q.overflow_dropped()
            + q.expired_dropped()
            + q.dedup_dropped();
        assert_eq!(
            terminal,
            received,
            "conservation violated under {shed:?} (dedup={dedup}): \
             applied {applied} + queued {} + overflow {} + expired {} + dedup {} != {received}",
            q.len(),
            q.overflow_dropped(),
            q.expired_dropped(),
            q.dedup_dropped()
        );
        assert!(q.len() <= cap);
        assert!(q.check_invariants());
    }
}

/// OS-queue mirror: `deliver`/`receive` with each shedding policy loses
/// exactly one message per overflow and conserves the rest.
fn run_os_conservation(arrivals: Vec<(u32, bool, u32)>, cap: usize, shed: ShedPolicy) {
    let mut q = OsQueue::with_shed(cap, shed);
    let mut received = 0u64;
    let mut delivered = 0u64;
    let mut displaced = 0u64;
    let mut rejected = 0u64;
    for (i, (obj, high, gen_ms)) in arrivals.into_iter().enumerate() {
        delivered += 1;
        let outcome = q.deliver(mk_update(i as u64, obj, high, gen_ms));
        assert!(
            outcome.displaced.is_none() || outcome.accepted,
            "at most one loss mode per delivery"
        );
        if outcome.displaced.is_some() {
            displaced += 1;
        }
        if !outcome.accepted {
            rejected += 1;
        }
        // Drain a little so the queue sees both full and empty regimes.
        if i % 3 == 0 {
            received += u64::from(q.receive().is_some());
        }
        assert_eq!(
            delivered,
            received + q.len() as u64 + displaced + rejected,
            "OS conservation violated under {shed:?}"
        );
        assert_eq!(q.dropped(), displaced + rejected);
        assert!(q.len() <= cap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn update_queue_conserves_drop_newest(
        ops in prop::collection::vec(op_strategy(), 1..140),
        cap in 1usize..24,
        dedup in proptest::bool::ANY,
    ) {
        run_conservation(ops, cap, dedup, ShedPolicy::DropNewest);
    }

    #[test]
    fn update_queue_conserves_drop_oldest(
        ops in prop::collection::vec(op_strategy(), 1..140),
        cap in 1usize..24,
        dedup in proptest::bool::ANY,
    ) {
        run_conservation(ops, cap, dedup, ShedPolicy::DropOldest);
    }

    #[test]
    fn update_queue_conserves_drop_lowest_importance(
        ops in prop::collection::vec(op_strategy(), 1..140),
        cap in 1usize..24,
        dedup in proptest::bool::ANY,
    ) {
        run_conservation(ops, cap, dedup, ShedPolicy::DropLowestImportance);
    }

    #[test]
    fn update_queue_conserves_coalesce_per_object(
        ops in prop::collection::vec(op_strategy(), 1..140),
        cap in 1usize..24,
        dedup in proptest::bool::ANY,
    ) {
        run_conservation(ops, cap, dedup, ShedPolicy::CoalescePerObject);
    }

    #[test]
    fn os_queue_conserves_every_policy(
        arrivals in prop::collection::vec((0u32..8, proptest::bool::ANY, 0u32..10_000), 1..160),
        cap in 1usize..16,
    ) {
        for shed in ShedPolicy::ALL {
            run_os_conservation(arrivals.clone(), cap, shed);
        }
    }
}
