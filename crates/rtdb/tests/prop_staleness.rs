//! Property tests: the event-driven staleness trackers against brute-force
//! oracles that recompute staleness from the full history at every step.

use proptest::prelude::*;
use strip_db::object::{Importance, ViewObjectId};
use strip_db::staleness::{ExpiryWatch, StalenessSpec, StalenessTracker};
use strip_sim::time::SimTime;

#[derive(Debug, Clone)]
enum Ev {
    Receive { obj: u32, gen_ms: u32 },
    Install { obj: u32, gen_ms: u32 },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u32..6, 0u32..60_000).prop_map(|(obj, gen_ms)| Ev::Receive { obj, gen_ms }),
        (0u32..6, 0u32..60_000).prop_map(|(obj, gen_ms)| Ev::Install { obj, gen_ms }),
    ]
}

fn t_ms(ms: u32) -> SimTime {
    SimTime::from_secs(f64::from(ms) / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// UU tracker: the stale flag equals `max received gen > max installed
    /// gen`, recomputed from scratch.
    #[test]
    fn uu_tracker_matches_history_oracle(
        events in prop::collection::vec(ev_strategy(), 1..150)
    ) {
        let n = 6u32;
        let mut tracker = StalenessTracker::new(
            StalenessSpec::UnappliedUpdate, n, 0, SimTime::ZERO, |_| SimTime::ZERO,
        );
        let mut max_received = vec![0u32; n as usize];
        let mut max_installed = vec![0u32; n as usize];
        let mut version = 0u64;
        for (step, ev) in events.iter().enumerate() {
            let now = t_ms(step as u32 * 10 + 60_000);
            match *ev {
                Ev::Receive { obj, gen_ms } => {
                    tracker.on_receive(ViewObjectId::new(Importance::Low, obj), t_ms(gen_ms), now);
                    let slot = &mut max_received[obj as usize];
                    *slot = (*slot).max(gen_ms);
                }
                Ev::Install { obj, gen_ms } => {
                    version += 1;
                    tracker.on_install(
                        ViewObjectId::new(Importance::Low, obj), t_ms(gen_ms), version, now,
                    );
                    let slot = &mut max_installed[obj as usize];
                    *slot = (*slot).max(gen_ms);
                }
            }
            let mut stale_count = 0.0;
            for obj in 0..n {
                let expect = max_received[obj as usize] > max_installed[obj as usize];
                let got = tracker.is_stale(ViewObjectId::new(Importance::Low, obj));
                prop_assert_eq!(got, expect, "object {} at step {}", obj, step);
                if expect {
                    stale_count += 1.0;
                }
            }
            prop_assert_eq!(tracker.stale_count(Importance::Low), stale_count);
        }
    }

    /// MA tracker: installing values and firing every watchdog in time
    /// order reproduces the timestamp-based oracle at any query time.
    #[test]
    fn ma_tracker_matches_timestamp_oracle(
        installs in prop::collection::vec((0u32..5, 0u32..30_000u32, 1u32..30_000u32), 1..60),
        alpha_ms in 1_000u32..10_000,
    ) {
        let n = 5u32;
        let alpha = f64::from(alpha_ms) / 1000.0;
        let mut tracker = StalenessTracker::new(
            StalenessSpec::MaxAge { alpha }, n, 0, SimTime::ZERO,
            |_| SimTime::ZERO,
        );
        // Fire initial watches and collect pending ones in a time-ordered
        // list, interleaving with installs (sorted by install time).
        let mut watches: Vec<ExpiryWatch> = tracker.initial_watches();
        let mut installs: Vec<(u32, u32, u32)> = installs;
        // Install times strictly increasing: accumulate offsets.
        let mut t_acc = 0u32;
        let mut schedule: Vec<(u32, u32, u32)> = Vec::new(); // (at_ms, obj, gen_ms)
        for (obj, gen_off, dt) in installs.drain(..) {
            t_acc += dt;
            let gen_ms = t_acc.saturating_sub(gen_off);
            schedule.push((t_acc, obj, gen_ms));
        }
        let mut latest_gen = vec![0u32; n as usize]; // oracle: newest installed gen
        let mut version = 0u64;
        let mut i = 0;
        // Event loop: process watches and installs in time order.
        loop {
            let next_watch = watches.iter().map(|w| w.at).min();
            let next_install = schedule.get(i).map(|s| t_ms(s.0));
            let (is_watch, now) = match (next_watch, next_install) {
                (None, None) => break,
                (Some(w), None) => (true, w),
                (None, Some(s)) => (false, s),
                (Some(w), Some(s)) => if w <= s { (true, w) } else { (false, s) },
            };
            if is_watch {
                let idx = watches
                    .iter()
                    .position(|w| w.at == now)
                    .expect("watch present");
                let w = watches.swap_remove(idx);
                tracker.on_expiry(w, now);
            } else {
                let (at_ms, obj, gen_ms) = schedule[i];
                i += 1;
                // Only newer generations install (the store's worthiness
                // check guarantees this in the real system).
                if gen_ms > latest_gen[obj as usize] {
                    latest_gen[obj as usize] = gen_ms;
                    version += 1;
                    if let Some(w) = tracker.on_install(
                        ViewObjectId::new(Importance::Low, obj),
                        t_ms(gen_ms),
                        version,
                        t_ms(at_ms),
                    ) {
                        watches.push(w);
                    }
                }
                // Oracle check at this instant for every object. At an age
                // of *exactly* alpha the watchdog convention (stale from
                // the boundary onward) and the strict `>` oracle disagree
                // on a measure-zero instant — skip those ties.
                for o in 0..n {
                    let age_ms = at_ms as i64 - i64::from(latest_gen[o as usize]);
                    if age_ms == i64::from(alpha_ms) {
                        continue;
                    }
                    let expect = age_ms > i64::from(alpha_ms);
                    prop_assert_eq!(
                        tracker.is_stale(ViewObjectId::new(Importance::Low, o)),
                        expect,
                        "object {} at {}ms (gen {}ms, alpha {}ms)",
                        o, at_ms, latest_gen[o as usize], alpha_ms
                    );
                }
            }
        }
    }

    /// fold is always within [0, 1] and matches a direct integral bound.
    #[test]
    fn fold_stays_in_unit_interval(
        events in prop::collection::vec(ev_strategy(), 1..100)
    ) {
        let mut tracker = StalenessTracker::new(
            StalenessSpec::UnappliedUpdate, 4, 4, SimTime::ZERO, |_| SimTime::ZERO,
        );
        for (step, ev) in events.iter().enumerate() {
            let now = t_ms(step as u32 * 7 + 1);
            match *ev {
                Ev::Receive { obj, gen_ms } => tracker.on_receive(
                    ViewObjectId::new(Importance::Low, obj % 4), t_ms(gen_ms), now,
                ),
                Ev::Install { obj, gen_ms } => {
                    tracker.on_install(
                        ViewObjectId::new(Importance::Low, obj % 4), t_ms(gen_ms), 1, now,
                    );
                }
            }
        }
        let end = t_ms(events.len() as u32 * 7 + 100);
        for class in Importance::ALL {
            let f = tracker.fold(class, end);
            prop_assert!((0.0..=1.0).contains(&f), "fold {f}");
        }
    }
}
