//! Property tests: the generation-ordered update queue against a
//! brute-force reference model, under arbitrary operation sequences.

use proptest::prelude::*;
use strip_db::object::{Importance, ViewObjectId};
use strip_db::update::Update;
use strip_db::update_queue::UpdateQueue;
use strip_sim::time::SimTime;

/// Operations exercised against both implementations.
#[derive(Debug, Clone)]
enum Op {
    Insert { obj: u32, gen_ms: u32 },
    PopOldest,
    PopNewest,
    DiscardExpired { now_ms: u32, alpha_ms: u32 },
    TakeNewestFor { obj: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..20, 0u32..10_000).prop_map(|(obj, gen_ms)| Op::Insert { obj, gen_ms }),
        2 => Just(Op::PopOldest),
        2 => Just(Op::PopNewest),
        1 => (0u32..12_000, 100u32..5_000)
            .prop_map(|(now_ms, alpha_ms)| Op::DiscardExpired { now_ms, alpha_ms }),
        2 => (0u32..20).prop_map(|obj| Op::TakeNewestFor { obj }),
    ]
}

/// Brute-force reference: a plain vector of updates.
#[derive(Default)]
struct Model {
    items: Vec<Update>,
}

impl Model {
    fn key(u: &Update) -> (SimTime, u64) {
        (u.generation_ts, u.seq)
    }

    fn insert(&mut self, u: Update, cap: usize, dedup: bool) {
        if dedup {
            let new_key = Self::key(&u);
            // A newer (or equal) same-object update supersedes the arrival.
            if self
                .items
                .iter()
                .any(|e| e.object == u.object && Self::key(e) >= new_key)
            {
                return;
            }
            self.items
                .retain(|e| e.object != u.object || Self::key(e) >= new_key);
        }
        self.items.push(u);
        if self.items.len() > cap {
            let oldest = self
                .items
                .iter()
                .map(Self::key)
                .min()
                .expect("non-empty");
            self.items.retain(|e| Self::key(e) != oldest);
        }
    }

    fn pop_oldest(&mut self) -> Option<Update> {
        let key = self.items.iter().map(Self::key).min()?;
        let idx = self.items.iter().position(|e| Self::key(e) == key)?;
        Some(self.items.remove(idx))
    }

    fn pop_newest(&mut self) -> Option<Update> {
        let key = self.items.iter().map(Self::key).max()?;
        let idx = self.items.iter().position(|e| Self::key(e) == key)?;
        Some(self.items.remove(idx))
    }

    fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let before = self.items.len();
        self.items.retain(|e| now.since(e.generation_ts) <= alpha);
        before - self.items.len()
    }

    fn take_newest_for(&mut self, obj: ViewObjectId) -> Option<Update> {
        let key = self
            .items
            .iter()
            .filter(|e| e.object == obj)
            .map(Self::key)
            .max()?;
        let idx = self.items.iter().position(|e| Self::key(e) == key)?;
        Some(self.items.remove(idx))
    }
}

fn mk_update(seq: u64, obj: u32, gen_ms: u32) -> Update {
    Update {
        seq,
        object: ViewObjectId::new(Importance::Low, obj),
        generation_ts: SimTime::from_secs(f64::from(gen_ms) / 1000.0),
        arrival_ts: SimTime::from_secs(f64::from(gen_ms) / 1000.0 + 0.05),
        payload: f64::from(seq as u32),
        attr_mask: Update::COMPLETE,
    }
}

fn run_ops(ops: Vec<Op>, cap: usize, dedup: bool) {
    let mut q = UpdateQueue::new(cap, dedup);
    let mut model = Model::default();
    let mut seq = 0u64;
    for op in ops {
        match op {
            Op::Insert { obj, gen_ms } => {
                let u = mk_update(seq, obj, gen_ms);
                seq += 1;
                q.insert(u);
                model.insert(u, cap, dedup);
            }
            Op::PopOldest => {
                assert_eq!(q.pop_oldest(), model.pop_oldest());
            }
            Op::PopNewest => {
                assert_eq!(q.pop_newest(), model.pop_newest());
            }
            Op::DiscardExpired { now_ms, alpha_ms } => {
                let now = SimTime::from_secs(f64::from(now_ms) / 1000.0);
                let alpha = f64::from(alpha_ms) / 1000.0;
                let got = q.discard_expired(now, alpha);
                let want = model.discard_expired(now, alpha);
                assert_eq!(got, want, "expiry discard count");
            }
            Op::TakeNewestFor { obj } => {
                let id = ViewObjectId::new(Importance::Low, obj);
                assert_eq!(q.take_newest_for(id), model.take_newest_for(id));
            }
        }
        assert_eq!(q.len(), model.items.len());
        assert!(q.len() <= cap);
        assert!(q.check_invariants(), "index/map divergence");
        // Queue iteration must be generation-sorted.
        let gens: Vec<_> = q.iter().map(|u| (u.generation_ts, u.seq)).collect();
        let mut sorted = gens.clone();
        sorted.sort();
        assert_eq!(gens, sorted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_matches_model_plain(ops in prop::collection::vec(op_strategy(), 1..120), cap in 1usize..40) {
        run_ops(ops, cap, false);
    }

    #[test]
    fn queue_matches_model_dedup(ops in prop::collection::vec(op_strategy(), 1..120), cap in 1usize..40) {
        run_ops(ops, cap, true);
    }

    #[test]
    fn dedup_holds_at_most_one_update_per_object(
        inserts in prop::collection::vec((0u32..10, 0u32..10_000), 1..200)
    ) {
        let mut q = UpdateQueue::new(1_000, true);
        for (i, (obj, gen_ms)) in inserts.into_iter().enumerate() {
            q.insert(mk_update(i as u64, obj, gen_ms));
        }
        let mut seen = std::collections::HashSet::new();
        for u in q.iter() {
            assert!(seen.insert(u.object), "duplicate pending update for {:?}", u.object);
        }
        assert!(q.len() <= 10);
    }

    #[test]
    fn newest_for_agrees_with_iteration(
        inserts in prop::collection::vec((0u32..8, 0u32..10_000), 1..100)
    ) {
        let mut q = UpdateQueue::new(1_000, false);
        for (i, (obj, gen_ms)) in inserts.into_iter().enumerate() {
            q.insert(mk_update(i as u64, obj, gen_ms));
        }
        for obj in 0..8u32 {
            let id = ViewObjectId::new(Importance::Low, obj);
            let expect = q
                .iter()
                .filter(|u| u.object == id)
                .max_by_key(|u| (u.generation_ts, u.seq))
                .copied();
            assert_eq!(q.newest_for(id).copied(), expect);
            assert_eq!(q.has_pending_for(id), expect.is_some());
        }
    }
}
