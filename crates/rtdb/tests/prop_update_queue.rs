//! Property tests: the generation-ordered update queue against a
//! brute-force reference model, under arbitrary operation sequences.

use proptest::prelude::*;
use strip_db::object::{Importance, ViewObjectId};
use strip_db::update::Update;
use strip_db::update_queue::reference::ReferenceUpdateQueue;
use strip_db::update_queue::UpdateQueue;
use strip_sim::time::SimTime;

/// Operations exercised against both implementations.
#[derive(Debug, Clone)]
enum Op {
    Insert { obj: u32, gen_ms: u32 },
    PopOldest,
    PopNewest,
    DiscardExpired { now_ms: u32, alpha_ms: u32 },
    TakeNewestFor { obj: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..20, 0u32..10_000).prop_map(|(obj, gen_ms)| Op::Insert { obj, gen_ms }),
        2 => Just(Op::PopOldest),
        2 => Just(Op::PopNewest),
        1 => (0u32..12_000, 100u32..5_000)
            .prop_map(|(now_ms, alpha_ms)| Op::DiscardExpired { now_ms, alpha_ms }),
        2 => (0u32..20).prop_map(|obj| Op::TakeNewestFor { obj }),
    ]
}

/// Brute-force reference: a plain vector of updates.
#[derive(Default)]
struct Model {
    items: Vec<Update>,
}

impl Model {
    fn key(u: &Update) -> (SimTime, u64) {
        (u.generation_ts, u.seq)
    }

    fn insert(&mut self, u: Update, cap: usize, dedup: bool) {
        if dedup {
            let new_key = Self::key(&u);
            // A newer (or equal) same-object update supersedes the arrival.
            if self
                .items
                .iter()
                .any(|e| e.object == u.object && Self::key(e) >= new_key)
            {
                return;
            }
            self.items
                .retain(|e| e.object != u.object || Self::key(e) >= new_key);
        }
        self.items.push(u);
        if self.items.len() > cap {
            let oldest = self.items.iter().map(Self::key).min().expect("non-empty");
            self.items.retain(|e| Self::key(e) != oldest);
        }
    }

    fn pop_oldest(&mut self) -> Option<Update> {
        let key = self.items.iter().map(Self::key).min()?;
        let idx = self.items.iter().position(|e| Self::key(e) == key)?;
        Some(self.items.remove(idx))
    }

    fn pop_newest(&mut self) -> Option<Update> {
        let key = self.items.iter().map(Self::key).max()?;
        let idx = self.items.iter().position(|e| Self::key(e) == key)?;
        Some(self.items.remove(idx))
    }

    fn discard_expired(&mut self, now: SimTime, alpha: f64) -> usize {
        let before = self.items.len();
        self.items.retain(|e| now.since(e.generation_ts) <= alpha);
        before - self.items.len()
    }

    fn take_newest_for(&mut self, obj: ViewObjectId) -> Option<Update> {
        let key = self
            .items
            .iter()
            .filter(|e| e.object == obj)
            .map(Self::key)
            .max()?;
        let idx = self.items.iter().position(|e| Self::key(e) == key)?;
        Some(self.items.remove(idx))
    }
}

fn mk_update(seq: u64, obj: u32, gen_ms: u32) -> Update {
    Update {
        seq,
        object: ViewObjectId::new(Importance::Low, obj),
        generation_ts: SimTime::from_secs(f64::from(gen_ms) / 1000.0),
        arrival_ts: SimTime::from_secs(f64::from(gen_ms) / 1000.0 + 0.05),
        payload: f64::from(seq as u32),
        attr_mask: Update::COMPLETE,
    }
}

fn run_ops(ops: Vec<Op>, cap: usize, dedup: bool) {
    let mut q = UpdateQueue::new(cap, dedup);
    let mut model = Model::default();
    let mut seq = 0u64;
    for op in ops {
        match op {
            Op::Insert { obj, gen_ms } => {
                let u = mk_update(seq, obj, gen_ms);
                seq += 1;
                q.insert(u);
                model.insert(u, cap, dedup);
            }
            Op::PopOldest => {
                assert_eq!(q.pop_oldest(), model.pop_oldest());
            }
            Op::PopNewest => {
                assert_eq!(q.pop_newest(), model.pop_newest());
            }
            Op::DiscardExpired { now_ms, alpha_ms } => {
                let now = SimTime::from_secs(f64::from(now_ms) / 1000.0);
                let alpha = f64::from(alpha_ms) / 1000.0;
                let got = q.discard_expired(now, alpha);
                let want = model.discard_expired(now, alpha);
                assert_eq!(got, want, "expiry discard count");
            }
            Op::TakeNewestFor { obj } => {
                let id = ViewObjectId::new(Importance::Low, obj);
                assert_eq!(q.take_newest_for(id), model.take_newest_for(id));
            }
        }
        assert_eq!(q.len(), model.items.len());
        assert!(q.len() <= cap);
        assert!(q.check_invariants(), "index/map divergence");
        // Queue iteration must be generation-sorted.
        let gens: Vec<_> = q.iter().map(|u| (u.generation_ts, u.seq)).collect();
        let mut sorted = gens.clone();
        sorted.sort();
        assert_eq!(gens, sorted);
    }
}

/// Operations for the slab-vs-seed equivalence test: everything [`Op`]
/// covers plus class-qualified objects, hot-first service, and per-object
/// drain interleavings.
#[derive(Debug, Clone)]
enum XOp {
    Insert { obj: u32, high: bool, gen_ms: u32 },
    PopOldest,
    PopNewest,
    DiscardExpired { now_ms: u32, alpha_ms: u32 },
    TakeNewestFor { obj: u32, high: bool },
    DrainObject { obj: u32, high: bool },
    PopHottest { salt: u64 },
}

fn xop_strategy() -> impl Strategy<Value = XOp> {
    let id = || (0u32..12, proptest::bool::ANY);
    prop_oneof![
        5 => (id(), 0u32..10_000)
            .prop_map(|((obj, high), gen_ms)| XOp::Insert { obj, high, gen_ms }),
        2 => Just(XOp::PopOldest),
        2 => Just(XOp::PopNewest),
        1 => (0u32..12_000, 100u32..5_000)
            .prop_map(|(now_ms, alpha_ms)| XOp::DiscardExpired { now_ms, alpha_ms }),
        2 => id().prop_map(|(obj, high)| XOp::TakeNewestFor { obj, high }),
        1 => id().prop_map(|(obj, high)| XOp::DrainObject { obj, high }),
        1 => (0u64..u64::MAX).prop_map(|salt| XOp::PopHottest { salt }),
    ]
}

fn vid(obj: u32, high: bool) -> ViewObjectId {
    let class = if high {
        Importance::High
    } else {
        Importance::Low
    };
    ViewObjectId::new(class, obj)
}

/// Drives the slab queue and the seed `BTreeMap` implementation through the
/// same operation sequence, asserting identical observable behaviour after
/// every step.
fn run_xops(ops: Vec<XOp>, cap: usize, dedup: bool) {
    let mut slab = UpdateQueue::new(cap, dedup);
    let mut seed = ReferenceUpdateQueue::new(cap, dedup);
    let mut seq = 0u64;
    for op in ops {
        match op {
            XOp::Insert { obj, high, gen_ms } => {
                let u = Update {
                    object: vid(obj, high),
                    ..mk_update(seq, obj, gen_ms)
                };
                seq += 1;
                prop_assert_eq!(slab.insert(u), seed.insert(u));
            }
            XOp::PopOldest => prop_assert_eq!(slab.pop_oldest(), seed.pop_oldest()),
            XOp::PopNewest => prop_assert_eq!(slab.pop_newest(), seed.pop_newest()),
            XOp::DiscardExpired { now_ms, alpha_ms } => {
                let now = SimTime::from_secs(f64::from(now_ms) / 1000.0);
                let alpha = f64::from(alpha_ms) / 1000.0;
                prop_assert_eq!(
                    slab.discard_expired(now, alpha),
                    seed.discard_expired(now, alpha)
                );
            }
            XOp::TakeNewestFor { obj, high } => {
                let id = vid(obj, high);
                prop_assert_eq!(slab.newest_for(id).copied(), seed.newest_for(id).copied());
                prop_assert_eq!(slab.take_newest_for(id), seed.take_newest_for(id));
            }
            XOp::DrainObject { obj, high } => {
                // Interleaved per-object drain: empty one object's chain
                // while the rest of the queue stays live.
                let id = vid(obj, high);
                loop {
                    let (a, b) = (slab.take_newest_for(id), seed.take_newest_for(id));
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
                prop_assert!(!slab.has_pending_for(id));
            }
            XOp::PopHottest { salt } => {
                // A salted pseudo-score: arbitrary but identical for both
                // sides, with deliberate collisions (mod 4) to exercise the
                // smaller-id tie-break.
                let score = move |id: ViewObjectId| (u64::from(id.index) ^ salt) % 4;
                prop_assert_eq!(slab.pop_hottest(score), seed.pop_hottest(score));
            }
        }
        prop_assert_eq!(slab.len(), seed.len());
        prop_assert_eq!(slab.is_empty(), seed.is_empty());
        prop_assert!(
            slab.iter().eq(seed.iter()),
            "generation-order iteration diverged"
        );
        prop_assert_eq!(slab.overflow_dropped(), seed.overflow_dropped());
        prop_assert_eq!(slab.expired_dropped(), seed.expired_dropped());
        prop_assert_eq!(slab.dedup_dropped(), seed.dedup_dropped());
        prop_assert!(slab.check_invariants());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_matches_model_plain(ops in prop::collection::vec(op_strategy(), 1..120), cap in 1usize..40) {
        run_ops(ops, cap, false);
    }

    #[test]
    fn slab_matches_seed_btreemap_plain(
        ops in prop::collection::vec(xop_strategy(), 1..160),
        cap in 1usize..48,
    ) {
        run_xops(ops, cap, false);
    }

    #[test]
    fn slab_matches_seed_btreemap_dedup(
        ops in prop::collection::vec(xop_strategy(), 1..160),
        cap in 1usize..48,
    ) {
        run_xops(ops, cap, true);
    }

    #[test]
    fn queue_matches_model_dedup(ops in prop::collection::vec(op_strategy(), 1..120), cap in 1usize..40) {
        run_ops(ops, cap, true);
    }

    #[test]
    fn dedup_holds_at_most_one_update_per_object(
        inserts in prop::collection::vec((0u32..10, 0u32..10_000), 1..200)
    ) {
        let mut q = UpdateQueue::new(1_000, true);
        for (i, (obj, gen_ms)) in inserts.into_iter().enumerate() {
            q.insert(mk_update(i as u64, obj, gen_ms));
        }
        let mut seen = std::collections::HashSet::new();
        for u in q.iter() {
            assert!(seen.insert(u.object), "duplicate pending update for {:?}", u.object);
        }
        assert!(q.len() <= 10);
    }

    #[test]
    fn newest_for_agrees_with_iteration(
        inserts in prop::collection::vec((0u32..8, 0u32..10_000), 1..100)
    ) {
        let mut q = UpdateQueue::new(1_000, false);
        for (i, (obj, gen_ms)) in inserts.into_iter().enumerate() {
            q.insert(mk_update(i as u64, obj, gen_ms));
        }
        for obj in 0..8u32 {
            let id = ViewObjectId::new(Importance::Low, obj);
            let expect = q
                .iter()
                .filter(|u| u.object == id)
                .max_by_key(|u| (u.generation_ts, u.seq))
                .copied();
            assert_eq!(q.newest_for(id).copied(), expect);
            assert_eq!(q.has_pending_for(id), expect.is_some());
        }
    }
}
