//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so a
//! consumer with real serde could serialize them, but no code in this repo
//! serializes anything. Since the build environment has no registry access,
//! this tiny path crate satisfies `use serde::{Deserialize, Serialize}` by
//! re-exporting no-op derive macros from the sibling `serde_derive` stub.
//!
//! Swapping back to crates.io serde is a one-line change in the workspace
//! `Cargo.toml`; no source file needs to change.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
