//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, and nothing in this
//! workspace actually serializes — types only *derive* `Serialize` /
//! `Deserialize` so that downstream users could wire up real serde. These
//! derives therefore expand to nothing: the attribute compiles, no trait
//! impl is emitted, and no code anywhere requires one.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
