//! Probability distributions used by the simulation model.
//!
//! The paper's workload (Section 5) uses exponential inter-arrival times
//! (Poisson processes), exponentially distributed update ages, normally
//! distributed transaction values / computation times / read-set sizes, and
//! uniformly distributed slack. All are implemented here over the
//! deterministic [`Xoshiro256pp`] generator.

use serde::{Deserialize, Serialize};

use crate::rng::Xoshiro256pp;

/// A distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64;
}

/// Uniform over `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must not exceed hi");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    #[inline]
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// Exponential with the given mean (rate = 1 / mean).
///
/// A mean of zero is allowed and degenerates to the constant 0, which models
/// e.g. "updates arrive with no network delay".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
        Exponential { mean }
    }

    /// Creates an exponential distribution with rate `rate` (events/sec).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[must_use]
    pub fn from_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be > 0");
        Exponential { mean: 1.0 / rate }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Distribution for Exponential {
    #[inline]
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        // Inverse transform; next_f64_open_zero avoids ln(0).
        -self.mean * rng.next_f64_open_zero().ln()
    }
}

/// Normal (Gaussian) via the Marsaglia polar method.
///
/// The polar method draws pairs; to keep sampling stateless (`&self`) the
/// second variate is discarded. The simulator samples a few million normals
/// per run, so the 2x rejection cost is irrelevant next to determinism and
/// simplicity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative or either parameter is not finite.
    #[must_use]
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(mean.is_finite() && sd.is_finite(), "params must be finite");
        assert!(sd >= 0.0, "sd must be >= 0");
        Normal { mean, sd }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sd * (u * factor);
            }
        }
    }
}

/// A normal clamped below at `floor` — used where the paper draws a "normally
/// distributed" quantity that must be non-negative (computation times,
/// read-set sizes). With the paper's parameters the clamp almost never
/// engages (e.g. compute time N(0.12, 0.01) is 12 standard deviations from
/// zero).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClampedNormal {
    inner: Normal,
    floor: f64,
}

impl ClampedNormal {
    /// Creates a normal clamped below at `floor`.
    #[must_use]
    pub fn new(mean: f64, sd: f64, floor: f64) -> Self {
        ClampedNormal {
            inner: Normal::new(mean, sd),
            floor,
        }
    }
}

impl Distribution for ClampedNormal {
    #[inline]
    fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.inner.sample(rng).max(self.floor)
    }
}

/// Poisson-distributed non-negative counts with the given mean, sampled
/// with Knuth's product-of-uniforms method — O(mean) uniforms per draw, so
/// intended for small means such as per-transaction derived-read counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    /// `exp(-mean)`; 1.0 for a zero mean, which always draws 0.
    limit: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
        Poisson {
            limit: (-mean).exp(),
        }
    }

    /// Draws one count.
    pub fn sample_count(&self, rng: &mut Xoshiro256pp) -> u64 {
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.next_f64();
            if p <= self.limit {
                return k;
            }
            k += 1;
        }
    }
}

/// Zipf distribution over ranks `0..n` (rank 0 most popular):
/// `P(k) ∝ 1 / (k + 1)^s`. The classic skewed-access model for database
/// workloads. `s = 0` degenerates to the discrete uniform.
///
/// Sampling uses an explicit CDF table with binary search — exact,
/// deterministic, and O(log n) per draw; the table is O(n), fine for the
/// object universes this simulator models (≤ millions).
///
/// # Example
///
/// ```
/// use strip_sim::dist::Zipf;
/// use strip_sim::rng::Xoshiro256pp;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = Xoshiro256pp::seed_from_u64(7);
/// let hot_hits = (0..1000)
///     .filter(|_| zipf.sample_rank(&mut rng) < 10)
///     .count();
/// // The top 10% of ranks draw roughly half the accesses.
/// assert!(hot_hits > 400);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `s` is negative or not finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample_rank(&self, rng: &mut Xoshiro256pp) -> u64 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the distribution has at least one rank).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(d: &impl Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..n {
            let x = d.sample(&mut rng);
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        (mean, m2 / (n - 1) as f64)
    }

    #[test]
    fn uniform_bounds_and_moments() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=6.0).contains(&x));
        }
        let (mean, var) = moments(&d, 200_000, 2);
        assert!((mean - 4.0).abs() < 0.02, "mean {mean}");
        assert!((var - 16.0 / 12.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn uniform_degenerate_point() {
        let d = Uniform::new(3.0, 3.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 3.0);
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(0.1);
        let (mean, var) = moments(&d, 400_000, 3);
        assert!((mean - 0.1).abs() < 0.002, "mean {mean}");
        assert!((var - 0.01).abs() < 0.001, "var {var}");
    }

    #[test]
    fn exponential_from_rate() {
        let d = Exponential::from_rate(400.0);
        assert!((d.mean() - 0.0025).abs() < 1e-12);
        let (mean, _) = moments(&d, 400_000, 4);
        assert!((mean - 0.0025).abs() < 5e-5, "mean {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_constant_zero() {
        let d = Exponential::new(0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..100_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(2.0, 0.5);
        let (mean, var) = moments(&d, 400_000, 5);
        assert!((mean - 2.0).abs() < 0.005, "mean {mean}");
        assert!((var - 0.25).abs() < 0.005, "var {var}");
    }

    #[test]
    fn normal_zero_sd_is_constant() {
        let d = Normal::new(1.5, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 1.5);
    }

    #[test]
    fn clamped_normal_respects_floor() {
        let d = ClampedNormal::new(0.0, 1.0, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut clamped = 0;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0);
            if x == 0.0 {
                clamped += 1;
            }
        }
        // About half the mass of N(0,1) is below 0.
        assert!(clamped > 4_000 && clamped < 6_000, "clamped {clamped}");
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.len(), 100);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            let k = z.sample_rank(&mut rng) as usize;
            assert!(k < 100);
            counts[k] += 1;
        }
        // Rank 0 should draw ~1/H(100) ≈ 19.3% of the mass.
        let frac0 = f64::from(counts[0]) / 100_000.0;
        assert!((frac0 - 0.193).abs() < 0.01, "frac0 {frac0}");
        // Monotone-ish decay: head far above tail.
        assert!(counts[0] > 10 * counts[99].max(1));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(22);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let f = f64::from(c) / 100_000.0;
            assert!((f - 0.1).abs() < 0.01, "uniform bucket {f}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn poisson_counts_match_mean_and_variance() {
        let p = Poisson::new(2.0);
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let n = 100_000;
        for i in 0..n {
            let x = p.sample_count(&mut rng) as f64;
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        let var = m2 / (n - 1) as f64;
        // Poisson(2): mean = variance = 2.
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 2.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_zero_mean_always_draws_zero() {
        let p = Poisson::new(0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(24);
        for _ in 0..100 {
            assert_eq!(p.sample_count(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "mean must be >= 0")]
    fn poisson_rejects_negative_mean() {
        let _ = Poisson::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "sd must be >= 0")]
    fn normal_rejects_negative_sd() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "mean must be >= 0")]
    fn exponential_rejects_negative_mean() {
        let _ = Exponential::new(-0.5);
    }
}
