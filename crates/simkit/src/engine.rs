//! The simulation run loop.
//!
//! [`Engine`] owns the future-event list and the clock; a model implements
//! [`Simulation`] and receives each event together with a scheduling context
//! [`Ctx`]. The engine advances time monotonically and stops at a horizon (or
//! when the calendar empties).

use crate::event::EventQueue;
use crate::time::SimTime;

/// Scheduling context handed to event handlers.
///
/// Wraps the calendar and the current clock so handlers can schedule
/// absolute or relative follow-up events.
pub struct Ctx<'a, E> {
    now: SimTime,
    calendar: &'a mut EventQueue<E>,
}

impl<'a, E> Ctx<'a, E> {
    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.calendar.schedule(at, event);
    }

    /// Schedules `event` after a delay of `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dt` is negative.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        debug_assert!(dt >= 0.0, "negative delay {dt}");
        self.calendar.schedule(self.now + dt, event);
    }
}

/// A discrete-event model.
pub trait Simulation {
    /// The event alphabet of the model.
    type Event;

    /// Handles one event at its scheduled time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);

    /// Observation hook: called by the engine after each handled event,
    /// once the model state reflects it. Intended for read-only observers
    /// (trace sinks, gauge samplers) that must not feed back into the
    /// simulation — implementations must not mutate model state that the
    /// event logic reads. The default is a no-op, so models that do not
    /// observe pay nothing (static dispatch, empty inlined body).
    fn after_event(&mut self, _now: SimTime) {}
}

/// The discrete-event engine: clock plus calendar.
pub struct Engine<E> {
    calendar: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at zero and an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            calendar: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates an engine whose calendar has room for `cap` pending events,
    /// so a model with a known steady-state population (e.g. one watchdog
    /// per database object) runs without calendar reallocations.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Engine {
            calendar: EventQueue::with_capacity(cap),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an initial event at absolute time `at` before the run
    /// starts (or between runs).
    pub fn prime(&mut self, at: SimTime, event: E) {
        self.calendar.schedule(at, event);
    }

    /// Runs the model until the calendar is exhausted or the next event
    /// would fire after `end`. Events at exactly `end` are processed.
    ///
    /// The clock finishes at `end` (even if the calendar emptied earlier), so
    /// time-weighted statistics can be closed at a well-defined horizon.
    pub fn run_until<S>(&mut self, sim: &mut S, end: SimTime)
    where
        S: Simulation<Event = E>,
    {
        while let Some(t) = self.calendar.peek_time() {
            if t > end {
                break;
            }
            let (t, ev) = self.calendar.pop().expect("peeked entry must pop");
            debug_assert!(t >= self.now, "event time regressed");
            self.now = t;
            self.processed += 1;
            let mut ctx = Ctx {
                now: t,
                calendar: &mut self.calendar,
            };
            sim.handle(ev, &mut ctx);
            sim.after_event(t);
        }
        self.now = self.now.max(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts down: event `n` schedules `n - 1` after 1s.
    struct Countdown {
        fired: Vec<(f64, u32)>,
    }

    impl Simulation for Countdown {
        type Event = u32;

        fn handle(&mut self, event: u32, ctx: &mut Ctx<'_, u32>) {
            self.fired.push((ctx.now().as_secs(), event));
            if event > 0 {
                ctx.schedule_in(1.0, event - 1);
            }
        }
    }

    #[test]
    fn runs_chain_of_events() {
        let mut engine = Engine::new();
        let mut sim = Countdown { fired: vec![] };
        engine.prime(SimTime::from_secs(0.5), 3);
        engine.run_until(&mut sim, SimTime::from_secs(100.0));
        assert_eq!(sim.fired, vec![(0.5, 3), (1.5, 2), (2.5, 1), (3.5, 0)]);
        assert_eq!(engine.events_processed(), 4);
        assert_eq!(engine.now().as_secs(), 100.0);
    }

    #[test]
    fn horizon_cuts_off_future_events() {
        let mut engine = Engine::new();
        let mut sim = Countdown { fired: vec![] };
        engine.prime(SimTime::from_secs(0.0), 10);
        engine.run_until(&mut sim, SimTime::from_secs(2.0));
        // Events at 0, 1, 2 fire; the event at 3 does not.
        assert_eq!(sim.fired.len(), 3);
        assert_eq!(engine.now().as_secs(), 2.0);
    }

    #[test]
    fn event_at_exact_horizon_fires() {
        let mut engine = Engine::new();
        let mut sim = Countdown { fired: vec![] };
        engine.prime(SimTime::from_secs(2.0), 0);
        engine.run_until(&mut sim, SimTime::from_secs(2.0));
        assert_eq!(sim.fired, vec![(2.0, 0)]);
    }

    /// A model that counts observation-hook calls.
    struct Observed {
        handled: u32,
        observed: Vec<f64>,
    }

    impl Simulation for Observed {
        type Event = u32;

        fn handle(&mut self, event: u32, ctx: &mut Ctx<'_, u32>) {
            self.handled += 1;
            if event > 0 {
                ctx.schedule_in(1.0, event - 1);
            }
        }

        fn after_event(&mut self, now: SimTime) {
            self.observed.push(now.as_secs());
        }
    }

    #[test]
    fn after_event_fires_once_per_handled_event() {
        let mut engine = Engine::new();
        let mut sim = Observed {
            handled: 0,
            observed: vec![],
        };
        engine.prime(SimTime::from_secs(0.0), 3);
        engine.run_until(&mut sim, SimTime::from_secs(10.0));
        assert_eq!(sim.handled, 4);
        assert_eq!(sim.observed, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn resumable_runs() {
        let mut engine = Engine::new();
        let mut sim = Countdown { fired: vec![] };
        engine.prime(SimTime::from_secs(0.0), 5);
        engine.run_until(&mut sim, SimTime::from_secs(2.5));
        let first = sim.fired.len();
        engine.run_until(&mut sim, SimTime::from_secs(10.0));
        assert!(sim.fired.len() > first);
        assert_eq!(sim.fired.len(), 6);
    }
}
