//! The future-event list.
//!
//! A classic discrete-event simulation calendar: events are popped in
//! non-decreasing time order, with FIFO tie-breaking (two events scheduled
//! for the same instant fire in the order they were scheduled). Stability
//! matters for reproducibility and for modelling conventions such as "the
//! deadline watchdog was armed before the completion event, so at an exact
//! tie the deadline fires first".
//!
//! The calendar is an indexed **four-ary min-heap** keyed on `(time, seq)`.
//! Compared to the `std::collections::BinaryHeap` binary heap it replaces
//! (preserved in [`reference`] as the benchmark baseline), a 4-ary heap is
//! half as deep, so a sift-down touches half as many cache lines — the right
//! trade for this workload, where almost every processed event schedules a
//! follow-up and the heap is hot in every simulated second. Because
//! `(time, seq)` is a strict total order (`seq` is unique), *any* correct
//! heap pops the exact same sequence, so swapping the structure cannot
//! change simulation results.

use core::mem::ManuallyDrop;
use core::ptr;

use crate::time::SimTime;

/// Order-preserving bijection from the `f64` total order to the `u64`
/// order: the same sign-flip trick `f64::total_cmp` performs on *every*
/// comparison, hoisted so it runs once per `schedule` instead of O(log n)
/// times per sift. Self-inverse up to the final sign toggle — see
/// [`bits_to_secs`].
#[inline]
fn secs_to_bits(secs: f64) -> u64 {
    let b = secs.to_bits() as i64;
    (b ^ (((b >> 63) as u64) >> 1) as i64) as u64 ^ (1 << 63)
}

/// Inverse of [`secs_to_bits`]: the conditional mantissa flip depends only
/// on the (preserved) sign bit, so undoing the sign toggle and re-applying
/// the flip recovers the original bits exactly.
#[inline]
fn bits_to_secs(bits: u64) -> f64 {
    let m = (bits ^ (1 << 63)) as i64;
    f64::from_bits((m ^ (((m >> 63) as u64) >> 1) as i64) as u64)
}

/// An entry in the calendar, keyed by the packed `u128`
/// `time_bits << 64 | seq`: the earliest time pops first and the sequence
/// number breaks ties in scheduling order. Packing the whole key into one
/// integer makes every heap comparison a single branch (or a conditional
/// move inside the child tournament).
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_secs(bits_to_secs((self.key >> 64) as u64))
    }
}

/// Heap arity: each node has up to four children.
const ARITY: usize = 4;

/// A hole in the heap slice during a sift: the displaced element is held
/// outside the slice, each level costs one move instead of a three-move
/// swap, and the element is written back exactly once on drop. This is the
/// same technique `std::collections::BinaryHeap` uses internally.
///
/// Invariant: `pos` is in bounds and the slot at `pos` is logically empty —
/// reads go through [`Hole::get`] with an index different from `pos`.
struct Hole<'a, T> {
    data: &'a mut [T],
    elt: ManuallyDrop<T>,
    pos: usize,
}

impl<'a, T> Hole<'a, T> {
    /// Opens a hole at `pos`.
    ///
    /// # Safety
    /// `pos` must be in bounds of `data`.
    unsafe fn new(data: &'a mut [T], pos: usize) -> Self {
        debug_assert!(pos < data.len());
        // SAFETY: caller guarantees `pos` is in bounds; the slot is treated
        // as empty until drop writes `elt` back.
        let elt = unsafe { ptr::read(data.get_unchecked(pos)) };
        Hole {
            data,
            elt: ManuallyDrop::new(elt),
            pos,
        }
    }

    /// The element removed from the hole.
    #[inline]
    fn element(&self) -> &T {
        &self.elt
    }

    /// Reads the element at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and different from the hole position.
    #[inline]
    unsafe fn get(&self, index: usize) -> &T {
        debug_assert!(index != self.pos && index < self.data.len());
        // SAFETY: caller guarantees the index is in bounds and occupied.
        unsafe { self.data.get_unchecked(index) }
    }

    /// Reads the element at `index` through the normal bounds check. The
    /// cold partial-last-level scan is not performance-critical, so it
    /// pays the checked access and carries no safety contract.
    #[inline]
    fn get_checked(&self, index: usize) -> &T {
        debug_assert!(index != self.pos);
        &self.data[index]
    }

    /// Moves the element at `index` into the hole; the hole moves to `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and different from the hole position.
    #[inline]
    unsafe fn move_to(&mut self, index: usize) {
        debug_assert!(index != self.pos && index < self.data.len());
        // SAFETY: source and destination are distinct in-bounds slots.
        unsafe {
            let ptr = self.data.as_mut_ptr();
            ptr::copy_nonoverlapping(ptr.add(index), ptr.add(self.pos), 1);
        }
        self.pos = index;
    }
}

impl<T> Drop for Hole<'_, T> {
    fn drop(&mut self) {
        // Fill the hole with the held element.
        // SAFETY: `pos` is in bounds and its slot is logically empty.
        unsafe {
            let pos = self.pos;
            ptr::copy_nonoverlapping(&*self.elt, self.data.get_unchecked_mut(pos), 1);
        }
    }
}

/// A future-event list holding events of type `E`.
pub struct EventQueue<E> {
    entries: Vec<Entry<E>>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            entries: Vec::new(),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Creates an empty calendar with room for `cap` events, so a run with
    /// a known population (e.g. one watchdog per view object) never
    /// reallocates.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            entries: Vec::with_capacity(cap),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.entries.push(Entry {
            key: (u128::from(secs_to_bits(time.as_secs())) << 64) | u128::from(seq),
            event,
        });
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let mut entry = self.entries.pop()?;
        if !self.entries.is_empty() {
            core::mem::swap(&mut entry, &mut self.entries[0]);
            self.sift_down_to_bottom(0);
        }
        Some((entry.time(), entry.event))
    }

    /// The time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(Entry::time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    #[must_use]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Allocated capacity of the backing storage (for diagnostics).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    fn sift_up(&mut self, pos: usize) {
        // SAFETY: callers pass an in-bounds index (the just-pushed slot);
        // parent indices of in-bounds nodes are in bounds and never equal
        // the hole position.
        unsafe {
            let mut hole = Hole::new(&mut self.entries, pos);
            while hole.pos > 0 {
                let parent = (hole.pos - 1) / ARITY;
                if hole.get(parent).key <= hole.element().key {
                    break;
                }
                hole.move_to(parent);
            }
        }
    }

    /// Restores the heap after a pop replaced the root with the (former)
    /// last element: the hole is driven straight to a leaf along the
    /// smallest-child path — *without* comparing the displaced element at
    /// each level — and the element is then bubbled back up from there.
    /// Because the displaced element came from the bottom of the heap, it
    /// almost always belongs near a leaf, so skipping the per-level element
    /// comparison saves a quarter of the comparisons on the hot pop path
    /// (the same "bounce" strategy `BinaryHeap::pop` uses).
    fn sift_down_to_bottom(&mut self, pos: usize) {
        let n = self.entries.len();
        // SAFETY: callers pass an in-bounds index; child indices are checked
        // against `n` before use and are strictly greater than the hole
        // position, and the bubble-up phase only revisits ancestors of the
        // leaf the hole reached.
        unsafe {
            let mut hole = Hole::new(&mut self.entries, pos);
            loop {
                let first = hole.pos * ARITY + 1;
                if first + ARITY <= n {
                    // All four children exist (the common case everywhere
                    // above the last level): a balanced tournament, which
                    // the optimiser lowers to conditional moves instead of
                    // a chain of mispredictable branches.
                    let k0 = hole.get(first).key;
                    let k1 = hole.get(first + 1).key;
                    let k2 = hole.get(first + 2).key;
                    let k3 = hole.get(first + 3).key;
                    let (ia, ka) = if k1 < k0 {
                        (first + 1, k1)
                    } else {
                        (first, k0)
                    };
                    let (ib, kb) = if k3 < k2 {
                        (first + 3, k3)
                    } else {
                        (first + 2, k2)
                    };
                    hole.move_to(if kb < ka { ib } else { ia });
                } else {
                    if first >= n {
                        break;
                    }
                    // Partial last level: linear scan over the 1–3 leaves,
                    // through the safe checked accessor — this runs at most
                    // once per pop, so the bounds checks are free noise.
                    let mut best = first;
                    let mut best_key = hole.get_checked(first).key;
                    for c in first + 1..n {
                        let key = hole.get_checked(c).key;
                        if key < best_key {
                            best = c;
                            best_key = key;
                        }
                    }
                    hole.move_to(best);
                    break;
                }
            }
            while hole.pos > pos {
                let parent = (hole.pos - 1) / ARITY;
                if hole.get(parent).key <= hole.element().key {
                    break;
                }
                hole.move_to(parent);
            }
        }
    }
}

/// The seed `BinaryHeap` calendar, kept verbatim as the baseline for the
/// micro benchmarks and as the oracle for the pop-order proptests. Not used
/// by the engine.
pub mod reference {
    use core::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; reverse so the earliest entry is
            // popped first.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The seed future-event list (see the module docs).
    pub struct EventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        scheduled: u64,
    }

    impl<E> Default for EventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> EventQueue<E> {
        /// Creates an empty calendar.
        #[must_use]
        pub fn new() -> Self {
            EventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                scheduled: 0,
            }
        }

        /// Schedules `event` to fire at `time`.
        pub fn schedule(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.scheduled += 1;
            self.heap.push(Entry { time, seq, event });
        }

        /// Removes and returns the earliest event, if any.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }

        /// The time of the earliest pending event, if any.
        #[must_use]
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        /// Number of pending events.
        #[must_use]
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True when no events are pending.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Total number of events ever scheduled (for diagnostics).
        #[must_use]
        pub fn total_scheduled(&self) -> u64 {
            self.scheduled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(1.0), i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(5.0), ());
        q.schedule(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert!(!q.is_empty());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn counts_scheduled() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
    }

    #[test]
    fn with_capacity_never_reallocates_within_budget() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        for i in 0..64 {
            q.schedule(t(64.0 - i as f64), i);
        }
        assert_eq!(q.capacity(), cap);
        while q.pop().is_some() {}
        assert_eq!(q.capacity(), cap);
    }

    #[test]
    fn matches_reference_heap_on_adversarial_interleaving() {
        // Deterministic pseudo-random mix of schedules (with many exact-tie
        // times) and pops; the 4-ary heap must emit the identical sequence
        // as the seed BinaryHeap, including FIFO tie order.
        let mut quad = EventQueue::new();
        let mut oracle = reference::EventQueue::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..10_000u64 {
            if rng() % 3 != 0 {
                // Coarse times (one of 64 values) force frequent ties.
                let time = t((rng() % 64) as f64);
                quad.schedule(time, i);
                oracle.schedule(time, i);
            } else {
                assert_eq!(quad.peek_time(), oracle.peek_time());
                assert_eq!(quad.pop(), oracle.pop());
            }
            assert_eq!(quad.len(), oracle.len());
        }
        loop {
            let (a, b) = (quad.pop(), oracle.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
