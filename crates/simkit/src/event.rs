//! The future-event list.
//!
//! A classic discrete-event simulation calendar: events are popped in
//! non-decreasing time order, with FIFO tie-breaking (two events scheduled
//! for the same instant fire in the order they were scheduled). Stability
//! matters for reproducibility and for modelling conventions such as "the
//! deadline watchdog was armed before the completion event, so at an exact
//! tie the deadline fires first".

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the calendar. Ordered by `(time, seq)` so the heap pops the
/// earliest event, breaking ties by insertion order.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest entry is popped
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list holding events of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Creates an empty calendar with room for `cap` events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    #[must_use]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(1.0), i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(5.0), ());
        q.schedule(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert!(!q.is_empty());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn counts_scheduled() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
    }
}
