//! `strip-sim` — a small, deterministic discrete-event simulation kernel.
//!
//! This crate replaces the DeNet simulation language used in the original
//! SIGMOD 1995 study "Applying Update Streams in a Soft Real-Time Database
//! System". It provides exactly the facilities a detailed event-driven
//! performance model needs and nothing else:
//!
//! * [`time::SimTime`] — a totally ordered simulated clock.
//! * [`event::EventQueue`] — a stable (FIFO tie-breaking) future-event list.
//! * [`engine::Engine`] / [`engine::Simulation`] — the run loop.
//! * [`rng`] — self-contained, cross-platform deterministic generators
//!   (SplitMix64 seeding, xoshiro256++ sampling, named sub-streams).
//! * [`dist`] — the distributions the paper's workload model requires.
//! * [`stats`] — exact time-weighted integrals (for staleness fractions),
//!   one-pass mean/variance, histograms.
//!
//! # Example
//!
//! ```
//! use strip_sim::engine::{Ctx, Engine, Simulation};
//! use strip_sim::time::SimTime;
//!
//! struct Pinger {
//!     count: u32,
//! }
//!
//! impl Simulation for Pinger {
//!     type Event = ();
//!     fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
//!         self.count += 1;
//!         ctx.schedule_in(1.0, ());
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let mut sim = Pinger { count: 0 };
//! engine.prime(SimTime::ZERO, ());
//! engine.run_until(&mut sim, SimTime::from_secs(10.0));
//! assert_eq!(sim.count, 11); // t = 0, 1, ..., 10
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{ClampedNormal, Distribution, Exponential, Normal, Uniform, Zipf};
pub use engine::{Ctx, Engine, Simulation};
pub use event::EventQueue;
pub use rng::{SplitMix64, Xoshiro256pp};
pub use stats::{Histogram, TimeWeighted, Welford};
pub use time::SimTime;
