//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible from a single `u64` seed, on
//! every platform and across dependency upgrades, so the generator is
//! implemented here rather than taken from an external crate:
//!
//! * [`SplitMix64`] — used to expand seeds and to derive independent
//!   sub-stream seeds (one per stochastic process, so e.g. changing the
//!   transaction arrival rate never perturbs the update stream).
//! * [`Xoshiro256pp`] — xoshiro256++ by Blackman & Vigna, the workhorse
//!   generator (period 2^256 − 1, excellent statistical quality, very fast).

use serde::{Deserialize, Serialize};

/// SplitMix64: a tiny, high-quality 64-bit generator used for seeding.
///
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — the main simulation generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256pp { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Sub-streams are derived by hashing `(seed material, label)` through
    /// SplitMix64, which in practice decorrelates streams completely. This is
    /// how the simulator gives each stochastic process (update arrivals,
    /// transaction arrivals, ages, values, …) its own stream.
    #[must_use]
    pub fn substream(&self, label: u64) -> Self {
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(label.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro256pp { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe as an argument to `ln`.
    #[inline]
    pub fn next_f64_open_zero(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: fresh generator reproduces the sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_diverge_from_parent_and_each_other() {
        let root = Xoshiro256pp::seed_from_u64(7);
        let mut s1 = root.substream(1);
        let mut s2 = root.substream(2);
        let mut s1b = root.substream(1);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        let mut collisions = 0;
        for _ in 0..64 {
            if s1.next_u64() == s2.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open_zero();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_below_mean_is_unbiased() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let n = 1_000_000u64;
        let k = 7u64;
        let sum: u64 = (0..n).map(|_| r.next_below(k)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        let mut r = Xoshiro256pp::seed_from_u64(1);
        let _ = r.next_below(0);
    }
}
