//! Online statistics for simulation outputs.
//!
//! The paper's headline staleness metric `fold` is a *time-weighted* average
//! of the stale fraction (Section 3.5), so the central type here is
//! [`TimeWeighted`], an exact piecewise-constant integrator. [`Welford`]
//! accumulates means/variances of per-entity observations (response times,
//! values) in one pass, and [`Histogram`] captures distributions.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Exact integrator for a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the running
/// integral of the signal over time is maintained exactly. The time-weighted
/// mean over `[start, end]` is `integral / (end - start)`.
///
/// # Example
///
/// ```
/// use strip_sim::stats::TimeWeighted;
/// use strip_sim::time::SimTime;
///
/// let t = SimTime::from_secs;
/// let mut stale_count = TimeWeighted::new(t(0.0), 0.0);
/// stale_count.set(t(2.0), 5.0); // five objects stale from t = 2
/// stale_count.set(t(8.0), 0.0); // all refreshed at t = 8
/// assert_eq!(stale_count.integral_through(t(10.0)), 30.0);
/// assert_eq!(stale_count.mean_over(t(0.0), t(10.0)), 3.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Creates an integrator starting at `start` with initial signal `value`.
    #[must_use]
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value,
            integral: 0.0,
        }
    }

    /// Records that the signal takes value `value` from time `now` onward.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `now` precedes the previous change —
    /// signals evolve forward in time.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_time,
            "TimeWeighted::set moved backwards: {now:?} < {:?}",
            self.last_time
        );
        self.integral += self.value * now.since(self.last_time);
        self.last_time = now;
        self.value = value;
    }

    /// Adds `delta` to the current signal value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current signal value.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The integral of the signal from the start time through `end`.
    #[must_use]
    pub fn integral_through(&self, end: SimTime) -> f64 {
        self.integral + self.value * end.since(self.last_time).max(0.0)
    }

    /// The time-weighted mean of the signal over `[start, end]` where
    /// `start` is the construction time.
    ///
    /// Returns 0 for an empty interval.
    #[must_use]
    pub fn mean_over(&self, start: SimTime, end: SimTime) -> f64 {
        let span = end.since(start);
        if span <= 0.0 {
            return 0.0;
        }
        self.integral_through(end) / span
    }
}

/// One-pass mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Reconstructs an accumulator from summary moments — `n` observations
    /// with sample mean `mean` and (unbiased) sample standard deviation
    /// `std_dev`. Together with [`Welford::merge`] this pools per-replica
    /// `(mean, sd, n)` summaries into the exact all-observation statistics.
    #[must_use]
    pub fn from_moments(n: u64, mean: f64, std_dev: f64) -> Self {
        Welford {
            n,
            mean: if n == 0 { 0.0 } else { mean },
            m2: if n < 2 {
                0.0
            } else {
                std_dev * std_dev * (n - 1) as f64
            },
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sum of the observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n_total as f64;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.n = n_total;
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "lo must be < hi");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        // lint: allow(raw-f64-sum, reason=lossless u64 bucket-count sum, not a float reduction)
        self.underflow + self.overflow + self.buckets.iter().sum::<u64>()
    }

    /// Bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below range / at-or-above range.
    #[must_use]
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate quantile (inclusive of out-of-range mass at the ends).
    ///
    /// Returns `None` if the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + width * (i as f64 + 1.0));
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn time_weighted_integrates_steps() {
        let mut tw = TimeWeighted::new(t(0.0), 0.0);
        tw.set(t(1.0), 1.0); // 0 for [0,1)
        tw.set(t(3.0), 0.5); // 1 for [1,3)
                             // 0.5 for [3,5]
        assert!((tw.integral_through(t(5.0)) - (0.0 + 2.0 + 1.0)).abs() < 1e-12);
        assert!((tw.mean_over(t(0.0), t(5.0)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_counts() {
        let mut tw = TimeWeighted::new(t(0.0), 2.0);
        tw.add(t(1.0), 3.0);
        assert_eq!(tw.current(), 5.0);
        tw.add(t(2.0), -5.0);
        assert_eq!(tw.current(), 0.0);
        assert!((tw.integral_through(t(2.0)) - (2.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_interval_is_zero() {
        let tw = TimeWeighted::new(t(2.0), 1.0);
        assert_eq!(tw.mean_over(t(2.0), t(2.0)), 0.0);
    }

    #[test]
    fn time_weighted_repeated_set_same_time() {
        let mut tw = TimeWeighted::new(t(0.0), 1.0);
        tw.set(t(1.0), 2.0);
        tw.set(t(1.0), 3.0);
        assert!((tw.integral_through(t(2.0)) - (1.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
        assert!((w.sum() - 31.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn from_moments_round_trips_and_pools() {
        let xs: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).cos() * 4.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        // Summarise two halves, reconstruct, merge: pooled stats must match
        // the single-pass accumulation over every observation.
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..25] {
            a.push(x);
        }
        for &x in &xs[25..] {
            b.push(x);
        }
        let mut pooled = Welford::from_moments(a.count(), a.mean(), a.std_dev());
        pooled.merge(&Welford::from_moments(b.count(), b.mean(), b.std_dev()));
        assert_eq!(pooled.count(), all.count());
        assert!((pooled.mean() - all.mean()).abs() < 1e-9);
        assert!((pooled.std_dev() - all.std_dev()).abs() < 1e-9);
        // Degenerate summaries stay well-defined.
        assert_eq!(Welford::from_moments(0, 5.0, 2.0).mean(), 0.0);
        assert_eq!(Welford::from_moments(1, 5.0, 0.0).std_dev(), 0.0);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0..9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert!(h.buckets().iter().all(|&c| c == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((4.0..=6.0).contains(&median), "median {median}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }
}
