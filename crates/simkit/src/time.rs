//! Simulation time.
//!
//! Simulated time is a non-negative number of seconds represented as `f64`.
//! The newtype [`SimTime`] provides a total order (simulation times are never
//! NaN by construction) so it can key ordered collections such as the event
//! queue and the generation-ordered update queue.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds since the start of the simulation.
///
/// `SimTime` is totally ordered. Constructors reject NaN, which is the only
/// source of partiality in `f64` comparisons; all arithmetic on non-NaN
/// operands stays non-NaN.
///
/// Times may be negative: view objects are initialised with generation
/// timestamps *before* the simulation start so that staleness statistics
/// begin in steady state (see the design notes in `DESIGN.md`).
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than every time reachable in a simulation.
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    #[inline]
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// The time as seconds.
    #[inline]
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `self - earlier` as a duration in seconds.
    #[inline]
    #[must_use]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// The later of two times.
    #[inline]
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if other > self {
            other
        } else {
            self
        }
    }

    /// The earlier of two times.
    #[inline]
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if other < self {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::ZERO < SimTime::FAR_FUTURE);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(3.5) + 1.25;
        assert_eq!(t.as_secs(), 4.75);
        assert_eq!(t - SimTime::from_secs(4.0), 0.75);
        assert_eq!(t.since(SimTime::ZERO), 4.75);
    }

    #[test]
    fn negative_times_are_allowed() {
        let t = SimTime::from_secs(-2.5);
        assert!(t < SimTime::ZERO);
        assert_eq!(SimTime::ZERO.since(t), 2.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 0.5;
        t += 0.5;
        assert_eq!(t.as_secs(), 1.0);
    }
}
