//! Miri regression tests for the calendar's hole-sifting path.
//!
//! The indexed 4-ary heap moves elements with `ptr::read` /
//! `copy_nonoverlapping` through a `Hole` that leaves one slot logically
//! empty until drop. The bugs that technique invites — double drops, leaks
//! of the displaced element, reads of the vacated slot — are exactly what
//! Miri detects and ordinary tests cannot. These tests drive the queue
//! through a deterministic churn with a drop-counting payload so Miri's
//! borrow and initialization tracking covers every sift path (hot
//! four-child tournament, cold partial last level, sift-up bounce, and
//! mid-heap holes from interleaved push/pop).
//!
//! CI runs this weekly under `cargo +nightly miri test` (see
//! `.github/workflows/miri.yml`); under plain `cargo test` it still
//! verifies drop-count conservation. The op count shrinks under Miri,
//! which executes ~1000x slower than native.

use std::cell::Cell;
use std::rc::Rc;

use strip_sim::event::EventQueue;
use strip_sim::rng::Xoshiro256pp;
use strip_sim::time::SimTime;

/// Payload that counts its drops; cloning tracks the same counter.
struct DropCounter {
    hits: Rc<Cell<u64>>,
}

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.hits.set(self.hits.get() + 1);
    }
}

fn op_count() -> usize {
    if cfg!(miri) {
        400
    } else {
        20_000
    }
}

#[test]
fn churn_conserves_drops_and_orders_pops() {
    let hits = Rc::new(Cell::new(0u64));
    let mut rng = Xoshiro256pp::seed_from_u64(0x5712_1995);
    let mut q = EventQueue::new();
    let mut scheduled = 0u64;
    let mut popped = 0u64;
    let mut last = SimTime::from_secs(0.0);

    for step in 0..op_count() {
        // Biased toward pushes early, pops late, with mid-heap holes from
        // interleaving; times collide often enough to exercise seq
        // tiebreaks.
        let push = rng.next_below(100) < if step < op_count() / 2 { 70 } else { 30 };
        if push || q.is_empty() {
            // Like a real simulator: schedule at or after the current
            // clock, so pop order must be globally monotone.
            let t = SimTime::from_secs(last.as_secs() + rng.next_below(1000) as f64 / 8.0);
            q.schedule(
                t,
                DropCounter {
                    hits: Rc::clone(&hits),
                },
            );
            scheduled += 1;
        } else {
            let (t, ev) = q.pop().expect("non-empty queue pops");
            assert!(t >= last, "pops must be time-ordered");
            last = t;
            drop(ev);
            popped += 1;
        }
    }
    assert_eq!(hits.get(), popped, "only popped events dropped so far");

    // Drain; every remaining element must drop exactly once.
    while let Some((t, _ev)) = q.pop() {
        assert!(t >= last);
        last = t;
        popped += 1;
    }
    assert_eq!(popped, scheduled);
    assert_eq!(hits.get(), scheduled, "every payload drops exactly once");
}

#[test]
fn dropping_a_loaded_queue_drops_every_payload_once() {
    let hits = Rc::new(Cell::new(0u64));
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let n = op_count() as u64 / 4;
    let mut q = EventQueue::with_capacity(n as usize);
    for _ in 0..n {
        let t = SimTime::from_secs(rng.next_f64() * 100.0);
        q.schedule(
            t,
            DropCounter {
                hits: Rc::clone(&hits),
            },
        );
    }
    drop(q);
    assert_eq!(hits.get(), n);
}

#[test]
fn zero_sized_payloads_survive_hole_sifting() {
    // A ZST payload makes every `ptr` arithmetic degenerate; Miri checks
    // the provenance rules still hold.
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mut q = EventQueue::new();
    for _ in 0..op_count() / 8 {
        q.schedule(SimTime::from_secs(rng.next_below(64) as f64), ());
    }
    let mut n = 0usize;
    let mut last = SimTime::from_secs(0.0);
    while let Some((t, ())) = q.pop() {
        assert!(t >= last);
        last = t;
        n += 1;
    }
    assert_eq!(n, op_count() / 8);
}
