//! Property tests: the four-ary-heap calendar against the seed
//! `BinaryHeap` implementation, under arbitrary schedule/pop interleavings.
//!
//! Because both are keyed on the strict total order `(time, seq)`, the two
//! must emit **identical** pop sequences — including FIFO order at exact
//! time ties — for any interleaving.

use proptest::prelude::*;
use strip_sim::event::{reference, EventQueue};
use strip_sim::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at one of a few coarse times (collisions exercise the FIFO
    /// tie-break).
    Schedule {
        time_ms: u32,
    },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..64).prop_map(|slot| Op::Schedule { time_ms: slot * 250 }),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quad_heap_matches_seed_binary_heap(
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut quad = EventQueue::new();
        let mut seed = reference::EventQueue::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule { time_ms } => {
                    let time = SimTime::from_secs(f64::from(time_ms) / 1000.0);
                    quad.schedule(time, payload);
                    seed.schedule(time, payload);
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(quad.peek_time(), seed.peek_time());
                    prop_assert_eq!(quad.pop(), seed.pop());
                }
            }
            prop_assert_eq!(quad.len(), seed.len());
            prop_assert_eq!(quad.is_empty(), seed.is_empty());
            prop_assert_eq!(quad.total_scheduled(), seed.total_scheduled());
        }
        // Drain both: the tails must agree too.
        loop {
            let (a, b) = (quad.pop(), seed.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pops_are_globally_time_sorted_with_fifo_ties(
        times in prop::collection::vec(0u32..32, 1..200),
    ) {
        let mut q = EventQueue::with_capacity(times.len());
        for (i, slot) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(f64::from(*slot)), i as u64);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing in time; at equal times, ascending in schedule
        // order (the payload is the insertion index).
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }
}
