//! Property tests of the engine run loop: arbitrary event chains execute in
//! time order, deterministically, and respect the horizon.

use proptest::prelude::*;
use strip_sim::engine::{Ctx, Engine, Simulation};
use strip_sim::time::SimTime;

/// A model that logs every firing and schedules follow-ups from a script:
/// event `i` schedules the events listed in `plan[i]` at relative delays.
struct Scripted {
    plan: Vec<Vec<(u16, u16)>>, // per event id: (delay_ms, next_id)
    fired: Vec<(u64, u16)>,     // (time in µs, id)
}

impl Simulation for Scripted {
    type Event = u16;

    fn handle(&mut self, event: u16, ctx: &mut Ctx<'_, u16>) {
        self.fired
            .push(((ctx.now().as_secs() * 1e6).round() as u64, event));
        if let Some(next) = self.plan.get(event as usize) {
            for &(delay_ms, id) in next {
                ctx.schedule_in(f64::from(delay_ms) / 1000.0, id);
            }
        }
    }
}

fn plan_strategy() -> impl Strategy<Value = Vec<Vec<(u16, u16)>>> {
    // Keep fan-out modest: branching chains double per step, so delays are
    // bounded below (≥ 100 ms) and most events schedule at most one
    // follow-up, keeping runs to a few thousand firings.
    prop::collection::vec(prop::collection::vec((100u16..500, 0u16..16), 0..2), 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn firings_are_time_ordered_and_deterministic(
        plan in plan_strategy(),
        primes in prop::collection::vec((0u16..2_000, 0u16..16), 1..6),
        horizon_ms in 1_000u16..4_000,
    ) {
        let run = || {
            let mut engine = Engine::new();
            let mut sim = Scripted {
                plan: plan.clone(),
                fired: Vec::new(),
            };
            for &(at_ms, id) in &primes {
                engine.prime(SimTime::from_secs(f64::from(at_ms) / 1000.0), id);
            }
            engine.run_until(&mut sim, SimTime::from_secs(f64::from(horizon_ms) / 1000.0));
            (sim.fired, engine.events_processed(), engine.now())
        };
        let (fired_a, count_a, now_a) = run();
        let (fired_b, count_b, now_b) = run();
        // Determinism.
        prop_assert_eq!(&fired_a, &fired_b);
        prop_assert_eq!(count_a, count_b);
        prop_assert_eq!(now_a, now_b);
        // Time order, horizon respected, count consistent.
        for w in fired_a.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "out of order: {:?}", w);
        }
        for &(t_us, _) in &fired_a {
            prop_assert!(t_us <= u64::from(horizon_ms) * 1000 + 1);
        }
        prop_assert_eq!(fired_a.len() as u64, count_a);
        prop_assert_eq!(now_a, SimTime::from_secs(f64::from(horizon_ms) / 1000.0));
    }

    /// Self-scheduling chains stop exactly at the horizon: the number of
    /// firings of a fixed-period self-loop is floor(horizon/period) + 1.
    #[test]
    fn periodic_self_loop_fires_expected_count(
        period_ms in 10u16..500,
        horizon_ms in 500u16..5_000,
    ) {
        struct Loopy {
            period: f64,
            count: u64,
        }
        impl Simulation for Loopy {
            type Event = ();
            fn handle(&mut self, (): (), ctx: &mut Ctx<'_, ()>) {
                self.count += 1;
                ctx.schedule_in(self.period, ());
            }
        }
        let mut engine = Engine::new();
        let mut sim = Loopy {
            period: f64::from(period_ms) / 1000.0,
            count: 0,
        };
        engine.prime(SimTime::ZERO, ());
        engine.run_until(&mut sim, SimTime::from_secs(f64::from(horizon_ms) / 1000.0));
        let expected = (f64::from(horizon_ms) / f64::from(period_ms)).floor() as u64 + 1;
        // Floating accumulation can put the boundary firing on either side;
        // allow one firing of slack at the exact-boundary case only.
        prop_assert!(
            sim.count == expected || sim.count == expected.saturating_sub(1),
            "count {} expected {}",
            sim.count,
            expected
        );
    }
}
