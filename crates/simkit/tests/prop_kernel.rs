//! Property tests of the simulation kernel: event ordering, time-weighted
//! statistics, Welford accumulation and histogram totals against
//! brute-force references.

use proptest::prelude::*;
use strip_sim::event::EventQueue;
use strip_sim::stats::{Histogram, TimeWeighted, Welford};
use strip_sim::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The calendar pops events in (time, insertion) order — i.e. it is a
    /// stable sort of the schedule.
    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0u32..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &ms) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(f64::from(ms)), i);
        }
        let mut expect: Vec<(u32, usize)> =
            times.iter().enumerate().map(|(i, &ms)| (ms, i)).collect();
        expect.sort(); // stable-equivalent because the index breaks ties
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_secs() as u32, i));
        }
        prop_assert_eq!(got, expect);
    }

    /// Interleaved schedule/pop sequences never pop out of order once the
    /// clock has advanced (monotone non-decreasing pop times for pending
    /// events scheduled in the future).
    #[test]
    fn event_queue_len_tracks_operations(ops in prop::collection::vec(prop::option::of(0u32..100), 1..300)) {
        let mut q = EventQueue::new();
        let mut expected_len = 0usize;
        for op in ops {
            match op {
                Some(ms) => {
                    q.schedule(SimTime::from_secs(f64::from(ms)), ());
                    expected_len += 1;
                }
                None => {
                    let expect_some = expected_len > 0;
                    let had = q.pop().is_some();
                    prop_assert_eq!(had, expect_some);
                    if had {
                        expected_len -= 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), expected_len);
            prop_assert_eq!(q.is_empty(), expected_len == 0);
        }
    }

    /// TimeWeighted equals a brute-force piecewise integral.
    #[test]
    fn time_weighted_matches_brute_force(
        steps in prop::collection::vec((1u32..100, -50i32..50), 1..80)
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0.0f64;
        let mut v = 0.0f64;
        let mut integral = 0.0f64;
        for (dt_ms, val) in steps {
            let dt = f64::from(dt_ms) / 1000.0;
            integral += v * dt;
            t += dt;
            v = f64::from(val);
            tw.set(SimTime::from_secs(t), v);
        }
        let end = t + 0.5;
        integral += v * 0.5;
        let got = tw.integral_through(SimTime::from_secs(end));
        prop_assert!((got - integral).abs() < 1e-9, "got {got}, want {integral}");
        let mean = tw.mean_over(SimTime::ZERO, SimTime::from_secs(end));
        prop_assert!((mean - integral / end).abs() < 1e-9);
    }

    /// Welford mean/variance equal the two-pass computation.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-6 * (1.0 + var));
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    /// Merging arbitrary partitions of the data equals sequential pushes.
    #[test]
    fn welford_merge_is_partition_invariant(
        xs in prop::collection::vec(-100f64..100.0, 2..120),
        split in 0usize..120,
    ) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7);
    }

    /// Histograms never lose observations.
    #[test]
    fn histogram_conserves_count(xs in prop::collection::vec(-10f64..10.0, 1..300)) {
        let mut h = Histogram::new(-5.0, 5.0, 10);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let (under, over) = h.out_of_range();
        let inside: u64 = h.buckets().iter().sum();
        prop_assert_eq!(under + over + inside, xs.len() as u64);
    }
}
