//! Stream-disturbance layer (robustness extension).
//!
//! Wraps any [`UpdateSource`] and perturbs its arrival process with
//! composable faults — batch (burst) delivery, an outage window followed
//! by a catch-up flood, delay jitter, duplicate deliveries and
//! out-of-order delivery — while preserving the controller's contract
//! that arrivals are produced in non-decreasing order.
//!
//! Every fault is a *delay-only* transform: a disturbed arrival is never
//! released before its undisturbed arrival instant. Combined with the
//! non-decreasing inner stream this gives a simple safe-release rule: a
//! buffered arrival with release time `r` may be emitted once the next
//! undisturbed arrival is at `r` or later, because no future arrival can
//! be perturbed to land before `r`.
//!
//! "Out of order" therefore means inversions of the *generation* order
//! observed by the receiver (an update overtaken by a later-generated
//! one), exactly the disorder the dedup/supersede machinery must absorb;
//! the delivered timeline itself stays monotone.
//!
//! The layer draws from its own RNG sub-stream (label 8, disjoint from
//! the generator labels 1–7), so an undisturbed run is bit-identical
//! whether or not this module is linked, and enabling one fault never
//! re-randomises another.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use strip_core::config::DisturbanceSpec;
use strip_core::sources::{StreamDisturbanceStats, UpdateSource, UpdateSpec};
use strip_sim::rng::Xoshiro256pp;
use strip_sim::time::SimTime;

use crate::generators::stream;

/// One transformed arrival waiting for safe release.
#[derive(Debug, Clone, Copy)]
struct Held {
    spec: UpdateSpec,
    /// Position in the undisturbed stream (for inversion counting).
    base_seq: u64,
    /// Extra delivery injected by the duplicate fault.
    is_dup: bool,
}

/// An [`UpdateSource`] adapter applying a [`DisturbanceSpec`] to `inner`.
#[derive(Debug, Clone)]
pub struct DisturbedUpdates<S> {
    inner: S,
    spec: DisturbanceSpec,
    outage: Option<(SimTime, SimTime)>,
    rng: Xoshiro256pp,
    /// One-slot lookahead of the inner stream.
    peeked: Option<UpdateSpec>,
    exhausted: bool,
    /// Release order over buffered arrivals: (release time, key).
    pending: BinaryHeap<Reverse<(SimTime, u64)>>,
    held: BTreeMap<u64, Held>,
    next_key: u64,
    /// Members of the burst group being assembled.
    group: Vec<(UpdateSpec, u64)>,
    /// Latest individual release time in the current group — the batch
    /// delivery instant once the group flushes.
    group_max: SimTime,
    base_seq: u64,
    max_released: Option<u64>,
    stats: StreamDisturbanceStats,
}

impl<S: UpdateSource> DisturbedUpdates<S> {
    /// Wraps `inner` with the faults described by `spec`, seeding the
    /// layer's private RNG sub-stream from the run seed.
    #[must_use]
    pub fn new(inner: S, spec: DisturbanceSpec, seed: u64) -> Self {
        let outage = spec
            .outage_window()
            .map(|(from, to)| (SimTime::from_secs(from), SimTime::from_secs(to)));
        DisturbedUpdates {
            inner,
            spec,
            outage,
            rng: Xoshiro256pp::seed_from_u64(seed).substream(stream::DISTURBANCE),
            peeked: None,
            exhausted: false,
            pending: BinaryHeap::new(),
            held: BTreeMap::new(),
            next_key: 0,
            group: Vec::new(),
            group_max: SimTime::ZERO,
            base_seq: 0,
            max_released: None,
            stats: StreamDisturbanceStats::default(),
        }
    }

    fn fill_peek(&mut self) {
        if self.peeked.is_none() && !self.exhausted {
            self.peeked = self.inner.next_update();
            self.exhausted = self.peeked.is_none();
        }
    }

    fn push_held(&mut self, release: SimTime, spec: UpdateSpec, base_seq: u64, is_dup: bool) {
        let key = self.next_key;
        self.next_key += 1;
        self.pending.push(Reverse((release, key)));
        self.held.insert(
            key,
            Held {
                spec,
                base_seq,
                is_dup,
            },
        );
    }

    /// Applies the delay faults to one inner arrival and buffers the
    /// result (plus any duplicate delivery).
    fn transform(&mut self, spec: UpdateSpec) {
        let base_seq = self.base_seq;
        self.base_seq += 1;
        let mut release = spec.arrival;
        if let Some((from, to)) = self.outage {
            if release >= from && release < to {
                // Held at the silent source; joins the catch-up flood.
                release = to;
                self.stats.outage_held += 1;
            }
        }
        if self.spec.jitter_max > 0.0 {
            release += self.rng.next_f64() * self.spec.jitter_max;
        }
        if self.spec.p_reorder > 0.0 && self.rng.chance(self.spec.p_reorder) {
            release += self.rng.next_f64() * self.spec.reorder_lag;
        }
        let dup_at = (self.spec.p_duplicate > 0.0 && self.rng.chance(self.spec.p_duplicate))
            .then(|| release + self.rng.next_f64() * self.spec.duplicate_lag);
        if self.spec.burst_size > 1 {
            self.group_max = self.group_max.max(release);
            self.group.push((spec, base_seq));
            if self.group.len() >= self.spec.burst_size as usize {
                self.flush_group();
            }
        } else {
            self.push_held(release, spec, base_seq, false);
        }
        if let Some(at) = dup_at {
            self.stats.duplicated += 1;
            self.push_held(at, spec, base_seq, true);
        }
    }

    /// Releases the assembled burst group at its batch instant.
    fn flush_group(&mut self) {
        if self.group.len() > 1 {
            self.stats.burst_grouped += self.group.len() as u64;
        }
        let at = self.group_max;
        let members: Vec<_> = self.group.drain(..).collect();
        for (spec, base_seq) in members {
            self.push_held(at, spec, base_seq, false);
        }
        self.group_max = SimTime::ZERO;
    }
}

impl<S: UpdateSource> UpdateSource for DisturbedUpdates<S> {
    fn next_update(&mut self) -> Option<UpdateSpec> {
        loop {
            self.fill_peek();
            if let Some(&Reverse((release, _))) = self.pending.peek() {
                // Safe once no future inner arrival (each released at or
                // after its own instant) nor the in-progress burst group
                // (flushed at ≥ group_max) can precede it.
                let safe_inner = self.peeked.is_none_or(|p| release <= p.arrival);
                let safe_group = self.group.is_empty() || release <= self.group_max;
                if safe_inner && safe_group {
                    let Reverse((release, key)) = self.pending.pop().expect("peeked head");
                    let held = self.held.remove(&key).expect("held spec");
                    if !held.is_dup {
                        match self.max_released {
                            Some(max) if held.base_seq < max => self.stats.reordered += 1,
                            _ => self.max_released = Some(held.base_seq),
                        }
                    }
                    let mut spec = held.spec;
                    spec.arrival = release;
                    return Some(spec);
                }
            }
            if let Some(spec) = self.peeked.take() {
                self.transform(spec);
                continue;
            }
            if !self.group.is_empty() {
                self.flush_group();
                continue;
            }
            return None;
        }
    }

    fn disturbance_stats(&self) -> StreamDisturbanceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::PoissonUpdates;
    use strip_core::config::SimConfig;
    use strip_core::sources::ScriptedUpdates;
    use strip_db::object::{Importance, ViewObjectId};

    fn spec_at(t: f64, idx: u32) -> UpdateSpec {
        UpdateSpec {
            arrival: SimTime::from_secs(t),
            object: ViewObjectId::new(Importance::Low, idx % 500),
            generation_ts: SimTime::from_secs((t - 0.05).max(0.0)),
            payload: 1.0,
            attr_mask: u64::MAX,
        }
    }

    fn drain<S: UpdateSource>(mut s: S) -> (Vec<UpdateSpec>, StreamDisturbanceStats) {
        let mut out = Vec::new();
        while let Some(u) = s.next_update() {
            out.push(u);
        }
        (out, s.disturbance_stats())
    }

    #[test]
    fn neutral_spec_is_identity() {
        let items: Vec<_> = (0..50).map(|i| spec_at(f64::from(i) * 0.1, i)).collect();
        let (out, stats) = drain(DisturbedUpdates::new(
            ScriptedUpdates::new(items.clone()),
            DisturbanceSpec::default(),
            7,
        ));
        assert_eq!(out, items);
        assert_eq!(stats, StreamDisturbanceStats::default());
    }

    #[test]
    fn outage_floods_at_window_end() {
        let spec = DisturbanceSpec {
            outage_from: 5.0,
            outage_secs: 3.0,
            ..DisturbanceSpec::default()
        };
        // Arrivals at 0.05, 0.15, … keep clear of the float boundaries at
        // 5.0 and 8.0; exactly 30 fall inside the window.
        let items: Vec<_> = (0..200)
            .map(|i| spec_at(f64::from(i) * 0.1 + 0.05, i))
            .collect();
        let (out, stats) = drain(DisturbedUpdates::new(ScriptedUpdates::new(items), spec, 5));
        assert_eq!(out.len(), 200);
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(out
            .iter()
            .all(|u| !(5.0..8.0).contains(&u.arrival.as_secs())));
        let flood = out
            .iter()
            .filter(|u| u.arrival == SimTime::from_secs(8.0))
            .count() as u64;
        assert_eq!(stats.outage_held, 30);
        assert_eq!(flood, 30);
    }

    #[test]
    fn duplicates_add_repeat_deliveries() {
        let items: Vec<_> = (0..200).map(|i| spec_at(f64::from(i) * 0.01, i)).collect();
        let spec = DisturbanceSpec {
            p_duplicate: 0.5,
            ..DisturbanceSpec::default()
        };
        let (out, stats) = drain(DisturbedUpdates::new(ScriptedUpdates::new(items), spec, 3));
        assert_eq!(out.len() as u64, 200 + stats.duplicated);
        assert!(stats.duplicated > 50, "duplicated {}", stats.duplicated);
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn bursts_batch_arrivals_at_one_instant() {
        let items: Vec<_> = (0..12).map(|i| spec_at(f64::from(i), i)).collect();
        let spec = DisturbanceSpec {
            burst_size: 4,
            ..DisturbanceSpec::default()
        };
        let (out, stats) = drain(DisturbedUpdates::new(ScriptedUpdates::new(items), spec, 1));
        assert_eq!(out.len(), 12);
        assert_eq!(stats.burst_grouped, 12);
        for (g, chunk) in out.chunks(4).enumerate() {
            // Batched at the latest member's own instant, original order.
            assert!(chunk.iter().all(|u| u.arrival == chunk[3].arrival));
            let batch_at = (g * 4 + 3) as f64;
            assert_eq!(chunk[3].arrival, SimTime::from_secs(batch_at));
        }
    }

    #[test]
    fn combined_faults_keep_arrivals_ordered() {
        let cfg = SimConfig::builder().duration(20.0).seed(9).build().unwrap();
        let spec = DisturbanceSpec {
            burst_size: 4,
            outage_from: 5.0,
            outage_secs: 3.0,
            jitter_max: 0.02,
            p_duplicate: 0.1,
            p_reorder: 0.2,
            ..DisturbanceSpec::default()
        };
        let inner = PoissonUpdates::from_config(&cfg);
        let (out, stats) = drain(DisturbedUpdates::new(inner, spec, cfg.seed));
        assert!(!out.is_empty());
        for w in out.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "delivery out of order");
        }
        assert!(out.iter().all(|u| u.generation_ts <= u.arrival));
        assert!(stats.outage_held > 0);
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
        assert!(stats.burst_grouped > 0);
    }

    #[test]
    fn disturbance_is_deterministic_per_seed() {
        let cfg = SimConfig::builder()
            .duration(10.0)
            .seed(11)
            .build()
            .unwrap();
        let spec = DisturbanceSpec {
            jitter_max: 0.05,
            p_duplicate: 0.2,
            p_reorder: 0.2,
            ..DisturbanceSpec::default()
        };
        let run = || {
            drain(DisturbedUpdates::new(
                PoissonUpdates::from_config(&cfg),
                spec,
                cfg.seed,
            ))
        };
        assert_eq!(run(), run());
    }
}
