//! Poisson workload generators (paper §5.1, §5.2).
//!
//! * Updates arrive as a Poisson process with rate `λ_u`; each update picks
//!   its importance class with probability `p_ul`, a uniformly random object
//!   within the class, and carries an exponentially distributed network age
//!   (mean `a_update`), so its generation timestamp precedes its arrival.
//! * Transactions arrive as a Poisson process with rate `λ_t`; each picks a
//!   value class with probability `p_tl`, a normally distributed value, a
//!   normally distributed computation time, a normally distributed read-set
//!   size over its class's view partition, and uniform slack.
//!
//! Every stochastic quantity draws from its own named RNG sub-stream, so
//! changing one parameter (say `λ_t`) never perturbs the other processes —
//! essential for low-variance comparisons across a sweep.

use strip_core::config::SimConfig;
use strip_core::sources::{TxnSource, UpdateSource, UpdateSpec};
use strip_core::txn::TxnSpec;
use strip_db::object::{Importance, ViewObjectId};
use strip_sim::dist::{ClampedNormal, Distribution, Exponential, Poisson, Uniform, Zipf};
use strip_sim::rng::Xoshiro256pp;
use strip_sim::time::SimTime;

/// Stream labels for RNG sub-stream derivation.
pub(crate) mod stream {
    pub const UPDATE_ARRIVAL: u64 = 1;
    pub const UPDATE_TARGET: u64 = 2;
    pub const UPDATE_AGE: u64 = 3;
    pub const UPDATE_PAYLOAD: u64 = 4;
    pub const TXN_ARRIVAL: u64 = 5;
    pub const TXN_SHAPE: u64 = 6;
    pub const TXN_READS: u64 = 7;
    /// Fault-injection layer (`crate::disturbance`) — disjoint from the
    /// generator labels so disturbances never perturb workload draws.
    pub const DISTURBANCE: u64 = 8;
    /// Derived-view reads (DAG extension); its own sub-stream so enabling
    /// the DAG never perturbs the base read/shape/arrival draws.
    pub const TXN_DERIVED_READS: u64 = 9;
}

/// Poisson update stream per Table 1.
#[derive(Debug, Clone)]
pub struct PoissonUpdates {
    clock: SimTime,
    horizon: SimTime,
    interarrival: Option<Exponential>,
    age: Exponential,
    p_low: f64,
    n_low: u32,
    n_high: u32,
    attrs: u32,
    p_partial: f64,
    arrival_rng: Xoshiro256pp,
    target_rng: Xoshiro256pp,
    age_rng: Xoshiro256pp,
    payload_rng: Xoshiro256pp,
}

impl PoissonUpdates {
    /// Builds the update stream described by `cfg`. Arrivals stop at the
    /// simulation horizon.
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Self {
        let root = Xoshiro256pp::seed_from_u64(cfg.seed);
        PoissonUpdates {
            clock: SimTime::ZERO,
            horizon: SimTime::from_secs(cfg.duration),
            interarrival: (cfg.lambda_u > 0.0).then(|| Exponential::from_rate(cfg.lambda_u)),
            age: Exponential::new(cfg.mean_update_age),
            p_low: cfg.p_update_low,
            n_low: cfg.n_low,
            n_high: cfg.n_high,
            attrs: cfg.attrs_per_object,
            p_partial: cfg.p_partial_update,
            arrival_rng: root.substream(stream::UPDATE_ARRIVAL),
            target_rng: root.substream(stream::UPDATE_TARGET),
            age_rng: root.substream(stream::UPDATE_AGE),
            payload_rng: root.substream(stream::UPDATE_PAYLOAD),
        }
    }
}

impl UpdateSource for PoissonUpdates {
    fn next_update(&mut self) -> Option<UpdateSpec> {
        let dist = self.interarrival.as_ref()?;
        self.clock += dist.sample(&mut self.arrival_rng);
        if self.clock > self.horizon {
            return None;
        }
        let (class, n) = if self.target_rng.chance(self.p_low) && self.n_low > 0 {
            (Importance::Low, self.n_low)
        } else if self.n_high > 0 {
            (Importance::High, self.n_high)
        } else {
            (Importance::Low, self.n_low)
        };
        let index = self.target_rng.next_below(u64::from(n)) as u32;
        let age = self.age.sample(&mut self.age_rng);
        let attr_mask = if self.p_partial > 0.0 && self.target_rng.chance(self.p_partial) {
            1u64 << self.target_rng.next_below(u64::from(self.attrs))
        } else {
            u64::MAX
        };
        Some(UpdateSpec {
            arrival: self.clock,
            object: ViewObjectId::new(class, index),
            generation_ts: SimTime::from_secs(self.clock.as_secs() - age),
            payload: self.payload_rng.next_f64() * 1_000.0,
            attr_mask,
        })
    }
}

/// Poisson transaction stream per Table 2, with an optional transient
/// burst (extension): a non-homogeneous Poisson process with a piecewise
/// constant rate, sampled exactly via the memorylessness property — a draw
/// that crosses a rate boundary is discarded and re-drawn from the
/// boundary at the new rate.
#[derive(Debug, Clone)]
pub struct PoissonTxns {
    clock: SimTime,
    horizon: SimTime,
    base_rate: f64,
    burst: Option<strip_core::config::BurstSpec>,
    interarrival: Option<Exponential>,
    p_low: f64,
    value_low: ClampedNormal,
    value_high: ClampedNormal,
    compute: ClampedNormal,
    reads: ClampedNormal,
    slack: Uniform,
    n_low: u32,
    n_high: u32,
    /// Zipf read-access skew per class (extension; None = uniform).
    skew: Option<[Zipf; 2]>,
    /// Derived-view read draws (DAG extension; None = no DAG configured):
    /// per-transaction Poisson count over a uniform node choice.
    derived: Option<(Poisson, u64)>,
    next_id: u64,
    arrival_rng: Xoshiro256pp,
    shape_rng: Xoshiro256pp,
    reads_rng: Xoshiro256pp,
    derived_rng: Xoshiro256pp,
}

impl PoissonTxns {
    /// Builds the transaction stream described by `cfg`. Arrivals stop at
    /// the simulation horizon.
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Self {
        let root = Xoshiro256pp::seed_from_u64(cfg.seed);
        PoissonTxns {
            clock: SimTime::ZERO,
            horizon: SimTime::from_secs(cfg.duration),
            base_rate: cfg.lambda_t,
            burst: cfg.lambda_t_burst,
            interarrival: (cfg.lambda_t > 0.0).then(|| Exponential::from_rate(cfg.lambda_t)),
            p_low: cfg.p_txn_low,
            value_low: ClampedNormal::new(cfg.value_low_mean, cfg.value_low_sd, 0.0),
            value_high: ClampedNormal::new(cfg.value_high_mean, cfg.value_high_sd, 0.0),
            compute: ClampedNormal::new(cfg.compute_mean, cfg.compute_sd, 1e-6),
            reads: ClampedNormal::new(cfg.reads_mean, cfg.reads_sd, 0.0),
            slack: Uniform::new(cfg.slack_min, cfg.slack_max),
            n_low: cfg.n_low,
            n_high: cfg.n_high,
            skew: (cfg.read_skew > 0.0).then(|| {
                [
                    Zipf::new(u64::from(cfg.n_low.max(1)), cfg.read_skew),
                    Zipf::new(u64::from(cfg.n_high.max(1)), cfg.read_skew),
                ]
            }),
            derived: cfg.dag.map(|d| {
                (
                    Poisson::new(d.derived_reads_mean),
                    u64::from(d.depth.max(1)) * u64::from(d.width.max(1)),
                )
            }),
            next_id: 0,
            arrival_rng: root.substream(stream::TXN_ARRIVAL),
            shape_rng: root.substream(stream::TXN_SHAPE),
            reads_rng: root.substream(stream::TXN_READS),
            derived_rng: root.substream(stream::TXN_DERIVED_READS),
        }
    }
}

impl PoissonTxns {
    /// The arrival rate in force at time `t`.
    fn rate_at(&self, t: f64) -> f64 {
        match self.burst {
            Some(b) if t >= b.from && t < b.until => self.base_rate * b.factor,
            _ => self.base_rate,
        }
    }

    /// The next rate boundary strictly after `t`, if any.
    fn next_boundary(&self, t: f64) -> Option<f64> {
        let b = self.burst?;
        if t < b.from {
            Some(b.from)
        } else if t < b.until {
            Some(b.until)
        } else {
            None
        }
    }

    /// Advances the clock to the next arrival of the (possibly
    /// non-homogeneous) Poisson process. Returns false when past the
    /// horizon.
    fn advance_clock(&mut self) -> bool {
        if self.interarrival.is_none() {
            return false;
        }
        let mut t = self.clock.as_secs();
        loop {
            let rate = self.rate_at(t);
            if rate <= 0.0 {
                // Zero-rate segment: jump to its end (or give up).
                match self.next_boundary(t) {
                    Some(b) => {
                        t = b;
                        continue;
                    }
                    None => return false,
                }
            }
            let dt = Exponential::from_rate(rate).sample(&mut self.arrival_rng);
            match self.next_boundary(t) {
                Some(b) if t + dt > b => {
                    // Crossed a rate boundary: restart from it
                    // (memorylessness keeps this exact).
                    t = b;
                }
                _ => {
                    t += dt;
                    self.clock = SimTime::from_secs(t);
                    return t <= self.horizon.as_secs();
                }
            }
        }
    }
}

impl TxnSource for PoissonTxns {
    fn next_txn(&mut self) -> Option<TxnSpec> {
        if !self.advance_clock() {
            return None;
        }
        let (class, n, value_dist) = if self.shape_rng.chance(self.p_low) && self.n_low > 0 {
            (Importance::Low, self.n_low, &self.value_low)
        } else {
            (Importance::High, self.n_high.max(1), &self.value_high)
        };
        let value = value_dist.sample(&mut self.shape_rng);
        let compute_time = self.compute.sample(&mut self.shape_rng);
        let slack = self.slack.sample(&mut self.shape_rng);
        let read_count = self.reads.sample(&mut self.reads_rng).round().max(0.0) as usize;
        let reads = (0..read_count)
            .map(|_| {
                let index = match &self.skew {
                    Some(zipf) => zipf[usize::from(class == Importance::High)]
                        .sample_rank(&mut self.reads_rng) as u32,
                    None => self.reads_rng.next_below(u64::from(n)) as u32,
                };
                ViewObjectId::new(class, index)
            })
            .collect();
        let derived_reads = match &self.derived {
            Some((count_dist, nodes)) => {
                let count = count_dist.sample_count(&mut self.derived_rng);
                (0..count)
                    .map(|_| self.derived_rng.next_below(*nodes) as u32)
                    .collect()
            }
            None => Vec::new(),
        };
        let id = self.next_id;
        self.next_id += 1;
        Some(TxnSpec {
            id,
            class,
            value,
            arrival: self.clock,
            slack,
            compute_time,
            reads,
            derived_reads,
        })
    }
}

/// Periodic update stream (paper §2 / §7 future work): every object is
/// re-reported on a fixed per-object period with a uniformly random phase,
/// so the aggregate rate still equals `λ_u`. Optional jitter perturbs each
/// emission. Because network ages vary, emissions are merged through a
/// small priority queue so arrivals are still produced in order.
#[derive(Debug, Clone)]
pub struct PeriodicUpdates {
    horizon: SimTime,
    /// Min-heap of future emissions: (generation time, object).
    emissions: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, ViewObjectId)>>,
    /// Min-heap of materialised arrivals waiting to be released in order.
    pending: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
    pending_specs: std::collections::BTreeMap<u64, UpdateSpec>,
    periods: [f64; 2],
    jitter_frac: f64,
    age: Exponential,
    seq: u64,
    rng: Xoshiro256pp,
    payload_rng: Xoshiro256pp,
}

impl PeriodicUpdates {
    /// Builds the periodic stream for `cfg` (using its `λ_u`, class mix and
    /// partition sizes to derive per-object periods).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.update_mode` is not periodic.
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Self {
        let strip_core::config::UpdateMode::Periodic { jitter_frac } = cfg.update_mode else {
            panic!("PeriodicUpdates requires UpdateMode::Periodic");
        };
        let root = Xoshiro256pp::seed_from_u64(cfg.seed);
        let mut rng = root.substream(stream::UPDATE_ARRIVAL);
        let periods = [
            cfg.per_object_refresh_mean(true),
            cfg.per_object_refresh_mean(false),
        ];
        let mut emissions = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut seed_class = |class: Importance, n: u32, period: f64| {
            if !period.is_finite() {
                return;
            }
            for i in 0..n {
                let phase = rng.next_f64() * period;
                emissions.push(std::cmp::Reverse((
                    SimTime::from_secs(phase),
                    seq,
                    ViewObjectId::new(class, i),
                )));
                seq += 1;
            }
        };
        seed_class(Importance::Low, cfg.n_low, periods[0]);
        seed_class(Importance::High, cfg.n_high, periods[1]);
        PeriodicUpdates {
            horizon: SimTime::from_secs(cfg.duration),
            emissions,
            pending: std::collections::BinaryHeap::new(),
            pending_specs: std::collections::BTreeMap::new(),
            periods,
            jitter_frac,
            age: Exponential::new(cfg.mean_update_age),
            seq,
            rng,
            payload_rng: root.substream(stream::UPDATE_PAYLOAD),
        }
    }

    /// Materialises one emission into a pending arrival and schedules the
    /// object's next emission. Callers check the horizon first.
    fn step_emission(&mut self) {
        let Some(std::cmp::Reverse((gen, _, object))) = self.emissions.pop() else {
            return;
        };
        // Next emission for this object.
        let period = self.periods[object.class.index()];
        let jitter = if self.jitter_frac > 0.0 {
            (self.rng.next_f64() - 0.5) * self.jitter_frac * period
        } else {
            0.0
        };
        let next_gen =
            SimTime::from_secs((gen.as_secs() + period + jitter).max(gen.as_secs() + 1e-9));
        self.emissions
            .push(std::cmp::Reverse((next_gen, self.seq, object)));
        self.seq += 1;
        // The arrival ages in the network.
        let arrival = gen + self.age.sample(&mut self.rng);
        let key = self.seq;
        self.seq += 1;
        self.pending.push(std::cmp::Reverse((arrival, key)));
        self.pending_specs.insert(
            key,
            UpdateSpec {
                arrival,
                object,
                generation_ts: gen,
                payload: self.payload_rng.next_f64() * 1_000.0,
                attr_mask: u64::MAX,
            },
        );
    }
}

impl UpdateSource for PeriodicUpdates {
    fn next_update(&mut self) -> Option<UpdateSpec> {
        // Release the earliest pending arrival only once no future emission
        // could produce an earlier one: a future emission with generation
        // time g yields an arrival ≥ g, so pending head `a` is safe when
        // a ≤ g (or when no emission before the horizon remains).
        while let Some(&std::cmp::Reverse((next_gen, _, _))) = self.emissions.peek() {
            if next_gen > self.horizon {
                break;
            }
            if let Some(&std::cmp::Reverse((a, _))) = self.pending.peek() {
                if a <= next_gen {
                    break;
                }
            }
            self.step_emission();
        }
        let std::cmp::Reverse((arrival, key)) = self.pending.pop()?;
        let spec = self.pending_specs.remove(&key).expect("pending spec");
        if arrival > self.horizon {
            // Heap order: everything still pending arrives even later.
            return None;
        }
        Some(spec)
    }
}

/// An update stream built from a [`SimConfig`]: Poisson (the paper's model)
/// or periodic (extension).
#[derive(Debug, Clone)]
pub enum UpdateStream {
    /// Poisson arrivals (paper §5.1).
    Poisson(PoissonUpdates),
    /// Fixed per-object periods (extension).
    Periodic(PeriodicUpdates),
}

impl UpdateStream {
    /// Chooses the stream type from `cfg.update_mode`.
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Self {
        match cfg.update_mode {
            strip_core::config::UpdateMode::Aperiodic => {
                UpdateStream::Poisson(PoissonUpdates::from_config(cfg))
            }
            strip_core::config::UpdateMode::Periodic { .. } => {
                UpdateStream::Periodic(PeriodicUpdates::from_config(cfg))
            }
        }
    }
}

impl UpdateSource for UpdateStream {
    fn next_update(&mut self) -> Option<UpdateSpec> {
        match self {
            UpdateStream::Poisson(s) => s.next_update(),
            UpdateStream::Periodic(s) => s.next_update(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .duration(100.0)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn update_rate_matches_lambda() {
        let mut src = PoissonUpdates::from_config(&cfg());
        let mut count = 0u64;
        while src.next_update().is_some() {
            count += 1;
        }
        // 400/s over 100 s → ~40 000 arrivals; Poisson sd ≈ 200.
        assert!((39_000..41_000).contains(&count), "count {count}");
    }

    #[test]
    fn updates_age_before_arrival() {
        let mut src = PoissonUpdates::from_config(&cfg());
        let mut total_age = 0.0;
        let mut n = 0;
        for _ in 0..10_000 {
            let u = src.next_update().unwrap();
            let age = u.arrival.since(u.generation_ts);
            assert!(age >= 0.0);
            total_age += age;
            n += 1;
        }
        let mean = total_age / f64::from(n);
        assert!((mean - 0.1).abs() < 0.01, "mean age {mean}");
    }

    #[test]
    fn update_class_mix_matches_p_ul() {
        let mut src = PoissonUpdates::from_config(&cfg());
        let mut lows = 0;
        let mut n = 0;
        while let Some(u) = src.next_update() {
            if u.object.class == Importance::Low {
                lows += 1;
            }
            assert!(u.object.index < 500);
            n += 1;
        }
        let frac = f64::from(lows) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.02, "low fraction {frac}");
    }

    #[test]
    fn update_targets_cover_partition() {
        let mut src = PoissonUpdates::from_config(&cfg());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let u = src.next_update().unwrap();
            seen.insert(u.object);
        }
        // 20k draws over 1000 objects: expect nearly all objects touched.
        assert!(seen.len() > 950, "covered {}", seen.len());
    }

    #[test]
    fn txn_rate_and_ids() {
        let mut src = PoissonTxns::from_config(&cfg());
        let mut count = 0u64;
        let mut last_id = None;
        while let Some(t) = src.next_txn() {
            if let Some(prev) = last_id {
                assert_eq!(t.id, prev + 1);
            }
            last_id = Some(t.id);
            count += 1;
        }
        // 10/s over 100 s → ~1000; sd ≈ 32.
        assert!((850..1150).contains(&count), "count {count}");
    }

    #[test]
    fn txn_shapes_match_table_2() {
        let big = SimConfig::builder()
            .duration(10_000.0)
            .seed(11)
            .build()
            .unwrap();
        let mut src = PoissonTxns::from_config(&big);
        let mut compute = strip_sim::stats::Welford::new();
        let mut reads = strip_sim::stats::Welford::new();
        let mut slack_min = f64::INFINITY;
        let mut slack_max = f64::NEG_INFINITY;
        let mut low_vals = strip_sim::stats::Welford::new();
        let mut high_vals = strip_sim::stats::Welford::new();
        for _ in 0..20_000 {
            let t = src.next_txn().unwrap();
            compute.push(t.compute_time);
            reads.push(t.reads.len() as f64);
            slack_min = slack_min.min(t.slack);
            slack_max = slack_max.max(t.slack);
            match t.class {
                Importance::Low => low_vals.push(t.value),
                Importance::High => high_vals.push(t.value),
            }
            for r in &t.reads {
                assert_eq!(r.class, t.class, "reads stay in the txn's class");
            }
        }
        assert!(
            (compute.mean() - 0.12).abs() < 0.002,
            "compute {}",
            compute.mean()
        );
        // Rounded-and-clamped N(2,1): mean stays near 2 (clamp adds ~+0.03).
        assert!((reads.mean() - 2.0).abs() < 0.1, "reads {}", reads.mean());
        assert!(slack_min >= 0.1 && slack_max <= 1.0);
        assert!(
            (low_vals.mean() - 1.0).abs() < 0.05,
            "low {}",
            low_vals.mean()
        );
        assert!(
            (high_vals.mean() - 2.0).abs() < 0.05,
            "high {}",
            high_vals.mean()
        );
    }

    #[test]
    fn dag_config_adds_derived_reads_without_perturbing_base_draws() {
        let base = cfg();
        let mut dagged = cfg();
        dagged.dag = Some(strip_core::config::DagSpec::default());
        let spec = dagged.dag.unwrap();
        let nodes = u64::from(spec.depth) * u64::from(spec.width);
        let mut a = PoissonTxns::from_config(&base);
        let mut b = PoissonTxns::from_config(&dagged);
        let mut saw_derived = false;
        for _ in 0..500 {
            let (x, y) = (a.next_txn().unwrap(), b.next_txn().unwrap());
            // The derived sub-stream is independent: every base draw is
            // bit-identical with and without the DAG.
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.reads, y.reads);
            assert_eq!(x.compute_time, y.compute_time);
            assert!(x.derived_reads.is_empty());
            saw_derived |= !y.derived_reads.is_empty();
            for &node in &y.derived_reads {
                assert!(u64::from(node) < nodes, "node {node} out of range");
            }
        }
        assert!(saw_derived, "mean 2.0 should produce derived reads");
    }

    fn periodic_cfg(jitter: f64) -> SimConfig {
        SimConfig::builder()
            .update_mode(strip_core::config::UpdateMode::Periodic {
                jitter_frac: jitter,
            })
            .duration(50.0)
            .seed(13)
            .build()
            .unwrap()
    }

    #[test]
    fn periodic_arrivals_are_ordered_and_rate_matches() {
        let mut src = PeriodicUpdates::from_config(&periodic_cfg(0.0));
        let mut count = 0u64;
        let mut last = SimTime::ZERO;
        while let Some(u) = src.next_update() {
            assert!(u.arrival >= last, "arrivals out of order");
            assert!(u.generation_ts <= u.arrival);
            last = u.arrival;
            count += 1;
        }
        // Aggregate rate λu = 400/s over 50 s → ~20 000 (edge effects from
        // phases and ages only).
        assert!((19_000..21_000).contains(&count), "count {count}");
    }

    #[test]
    fn periodic_refreshes_every_object_regularly() {
        let mut src = PeriodicUpdates::from_config(&periodic_cfg(0.0));
        let mut per_obj: std::collections::HashMap<ViewObjectId, Vec<f64>> =
            std::collections::HashMap::new();
        while let Some(u) = src.next_update() {
            per_obj
                .entry(u.object)
                .or_default()
                .push(u.generation_ts.as_secs());
        }
        // Every object is covered...
        assert_eq!(per_obj.len(), 1000);
        // ...and generation gaps equal the per-object period (2.5 s).
        for gens in per_obj.values() {
            for w in gens.windows(2) {
                assert!((w[1] - w[0] - 2.5).abs() < 1e-9, "gap {}", w[1] - w[0]);
            }
        }
    }

    #[test]
    fn periodic_jitter_perturbs_gaps_but_keeps_order() {
        let mut src = PeriodicUpdates::from_config(&periodic_cfg(0.5));
        let mut last = SimTime::ZERO;
        let mut gaps: Vec<f64> = Vec::new();
        let mut per_obj: std::collections::HashMap<ViewObjectId, f64> =
            std::collections::HashMap::new();
        while let Some(u) = src.next_update() {
            assert!(u.arrival >= last);
            last = u.arrival;
            if let Some(prev) = per_obj.insert(u.object, u.generation_ts.as_secs()) {
                gaps.push(u.generation_ts.as_secs() - prev);
            }
        }
        let irregular = gaps.iter().filter(|g| (*g - 2.5).abs() > 0.01).count();
        assert!(
            irregular > gaps.len() / 2,
            "jitter should perturb most gaps"
        );
    }

    #[test]
    fn update_stream_dispatches_on_mode() {
        let aperiodic = SimConfig::builder().duration(5.0).build().unwrap();
        assert!(matches!(
            UpdateStream::from_config(&aperiodic),
            UpdateStream::Poisson(_)
        ));
        assert!(matches!(
            UpdateStream::from_config(&periodic_cfg(0.0)),
            UpdateStream::Periodic(_)
        ));
    }

    #[test]
    fn burst_multiplies_rate_inside_the_window() {
        let cfg = SimConfig::builder()
            .duration(300.0)
            .lambda_t(10.0)
            .lambda_t_burst(Some(strip_core::config::BurstSpec {
                from: 100.0,
                until: 200.0,
                factor: 3.0,
            }))
            .seed(31)
            .build()
            .unwrap();
        let mut src = PoissonTxns::from_config(&cfg);
        let mut buckets = [0u32; 3];
        let mut last = 0.0;
        while let Some(t) = src.next_txn() {
            let secs = t.arrival.as_secs();
            assert!(secs >= last, "ordered arrivals");
            last = secs;
            buckets[(secs / 100.0).min(2.0) as usize] += 1;
        }
        // ~1000 / ~3000 / ~1000 arrivals per segment.
        assert!((850..1150).contains(&buckets[0]), "pre {}", buckets[0]);
        assert!((2700..3300).contains(&buckets[1]), "burst {}", buckets[1]);
        assert!((850..1150).contains(&buckets[2]), "post {}", buckets[2]);
    }

    #[test]
    fn zero_factor_burst_silences_the_window() {
        let cfg = SimConfig::builder()
            .duration(300.0)
            .lambda_t(10.0)
            .lambda_t_burst(Some(strip_core::config::BurstSpec {
                from: 100.0,
                until: 200.0,
                factor: 0.0,
            }))
            .seed(32)
            .build()
            .unwrap();
        let mut src = PoissonTxns::from_config(&cfg);
        while let Some(t) = src.next_txn() {
            let secs = t.arrival.as_secs();
            assert!(!(100.0..200.0).contains(&secs), "arrival at {secs}");
        }
    }

    #[test]
    fn zipf_skew_concentrates_reads_on_hot_objects() {
        let cfg = SimConfig::builder()
            .duration(500.0)
            .read_skew(1.0)
            .seed(33)
            .build()
            .unwrap();
        let mut src = PoissonTxns::from_config(&cfg);
        let mut hot = 0u32;
        let mut total = 0u32;
        while let Some(t) = src.next_txn() {
            for r in &t.reads {
                total += 1;
                if r.index < 25 {
                    hot += 1;
                }
            }
        }
        // Top 5% of a 500-object Zipf(1) universe draws ~47% of accesses.
        let frac = f64::from(hot) / f64::from(total.max(1));
        assert!(frac > 0.35, "hot fraction {frac}");
    }

    #[test]
    fn zero_rates_produce_no_arrivals() {
        let c = SimConfig::builder()
            .lambda_u(0.0)
            .lambda_t(0.0)
            .duration(10.0)
            .build()
            .unwrap();
        assert!(PoissonUpdates::from_config(&c).next_update().is_none());
        assert!(PoissonTxns::from_config(&c).next_txn().is_none());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let c = cfg();
        let mut a = PoissonUpdates::from_config(&c);
        let mut b = PoissonUpdates::from_config(&c);
        for _ in 0..1000 {
            assert_eq!(a.next_update(), b.next_update());
        }
    }

    #[test]
    fn changing_txn_rate_leaves_update_stream_untouched() {
        let c1 = cfg();
        let mut c2 = cfg();
        c2.lambda_t = 25.0;
        let mut a = PoissonUpdates::from_config(&c1);
        let mut b = PoissonUpdates::from_config(&c2);
        for _ in 0..1000 {
            assert_eq!(a.next_update(), b.next_update());
        }
    }
}
