//! `strip-workload` — workload generation for the SIGMOD 1995
//! update-streams reproduction.
//!
//! * [`generators`] — the paper's Poisson update stream (Table 1) and
//!   transaction stream (Table 2), with independent RNG sub-streams per
//!   stochastic process.
//! * [`scenarios`] — presets for the paper's three motivating domains:
//!   program trading, plant control, telecommunications.
//! * [`trace`] — capture/replay of materialised workloads.
//! * [`run_paper_sim`] — one-call entry point: build both generators from a
//!   [`SimConfig`] and run the full simulation.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod generators;
pub mod scenarios;
pub mod trace;

pub use generators::{PeriodicUpdates, PoissonTxns, PoissonUpdates, UpdateStream};
pub use trace::Trace;

use strip_core::config::SimConfig;
use strip_core::controller::run_simulation;
use strip_core::report::RunReport;

/// Runs one simulation of `cfg` with the paper's Poisson workload model.
///
/// # Example
///
/// ```
/// use strip_core::config::{Policy, SimConfig};
/// use strip_workload::run_paper_sim;
///
/// let cfg = SimConfig::builder()
///     .policy(Policy::OnDemand)
///     .duration(5.0)
///     .seed(42)
///     .build()
///     .unwrap();
/// let report = run_paper_sim(&cfg);
/// assert!(report.txns.arrived > 0);
/// assert!(report.cpu.utilization() > 0.0);
/// ```
#[must_use]
pub fn run_paper_sim(cfg: &SimConfig) -> RunReport {
    run_simulation(
        cfg,
        generators::UpdateStream::from_config(cfg),
        PoissonTxns::from_config(cfg),
    )
}
