//! `strip-workload` — workload generation for the SIGMOD 1995
//! update-streams reproduction.
//!
//! * [`generators`] — the paper's Poisson update stream (Table 1) and
//!   transaction stream (Table 2), with independent RNG sub-streams per
//!   stochastic process.
//! * [`disturbance`] — fault injection over the update stream (bursts,
//!   outages, jitter, duplicates, reordering; robustness extension).
//! * [`scenarios`] — presets for the paper's three motivating domains:
//!   program trading, plant control, telecommunications.
//! * [`trace`] — capture/replay of materialised workloads.
//! * [`run_paper_sim`] — one-call entry point: build both generators from a
//!   [`SimConfig`] and run the full simulation.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod disturbance;
pub mod generators;
pub mod scenarios;
pub mod striped;
pub mod trace;

pub use disturbance::DisturbedUpdates;
pub use generators::{PeriodicUpdates, PoissonTxns, PoissonUpdates, UpdateStream};
pub use striped::run_paper_sim_striped;
pub use trace::Trace;

use strip_core::config::{ConfigError, SimConfig};
use strip_core::controller::{run_simulation_checked, run_simulation_traced};
use strip_core::report::RunReport;
use strip_obs::{TraceConfig, TraceData};

/// Runs one simulation of `cfg` with the paper's Poisson workload model.
///
/// # Example
///
/// ```
/// use strip_core::config::{Policy, SimConfig};
/// use strip_workload::run_paper_sim;
///
/// let cfg = SimConfig::builder()
///     .policy(Policy::OnDemand)
///     .duration(5.0)
///     .seed(42)
///     .build()
///     .unwrap();
/// let report = run_paper_sim(&cfg);
/// assert!(report.txns.arrived > 0);
/// assert!(report.cpu.utilization() > 0.0);
/// ```
#[must_use]
pub fn run_paper_sim(cfg: &SimConfig) -> RunReport {
    run_paper_sim_checked(cfg).expect("invalid SimConfig")
}

/// Fallible variant of [`run_paper_sim`]: surfaces config-validation
/// failures as a value so sweep drivers can record them per point.
///
/// When `cfg.disturbance` is set, the update stream is wrapped in the
/// fault-injection layer ([`DisturbedUpdates`]); otherwise the generators
/// feed the controller directly and the run is bit-identical to builds
/// that predate the layer.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` fails validation.
pub fn run_paper_sim_checked(cfg: &SimConfig) -> Result<RunReport, ConfigError> {
    let updates = generators::UpdateStream::from_config(cfg);
    let txns = PoissonTxns::from_config(cfg);
    match cfg.disturbance {
        Some(spec) => {
            run_simulation_checked(cfg, DisturbedUpdates::new(updates, spec, cfg.seed), txns)
        }
        None => run_simulation_checked(cfg, updates, txns),
    }
}

/// Like [`run_paper_sim_checked`], but with a flight recorder attached
/// (see `strip-obs`): returns the trace capture alongside the report. The
/// report is bit-identical to [`run_paper_sim_checked`]'s for the same
/// `cfg` — tracing is observation-only.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` fails validation.
pub fn run_paper_sim_traced(
    cfg: &SimConfig,
    trace: TraceConfig,
) -> Result<(RunReport, TraceData), ConfigError> {
    let updates = generators::UpdateStream::from_config(cfg);
    let txns = PoissonTxns::from_config(cfg);
    match cfg.disturbance {
        Some(spec) => run_simulation_traced(
            cfg,
            DisturbedUpdates::new(updates, spec, cfg.seed),
            txns,
            trace,
        ),
        None => run_simulation_traced(cfg, updates, txns, trace),
    }
}
