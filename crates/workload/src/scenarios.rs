//! Scenario presets.
//!
//! The paper motivates the update-stream problem with three application
//! domains (§1–§2). These presets capture each as a ready-to-run
//! configuration so the examples and downstream users start from sensible,
//! documented parameter sets rather than raw numbers.

use strip_core::config::{DagSpec, Policy, QueuePolicy, SimConfig};
use strip_db::staleness::StalenessSpec;

/// Program trading (the paper's primary motivation, §1): a large universe
/// of financial instruments with a heavy update stream; transactions are
/// arbitrage checks whose value is the profit of the trade. Stale data
/// means wrong trades, so staleness is tracked, but transactions complete
/// (a human confirms the trade — "red light" semantics).
#[must_use]
pub fn program_trading(policy: Policy, seed: u64) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .seed(seed)
        // Heavy market feed: the paper cites up to 500 updates/second peak.
        .lambda_u(500.0)
        .p_update_low(0.6)
        .mean_update_age(0.05)
        .n_low(700)
        .n_high(300)
        // Trading opportunities arrive briskly and expire fast.
        .lambda_t(12.0)
        .p_txn_low(0.5)
        .slack_min(0.05)
        .slack_max(0.5)
        .values(1.0, 0.5, 3.0, 1.0)
        .reads_mean(3.0)
        .reads_sd(1.0)
        .max_age(5.0)
        .compute_mean(0.08)
        .compute_sd(0.01)
        .build()
        .expect("program trading preset is valid")
}

/// Plant control (§2's MA example): sensors report periodically; a reading
/// that has not been refreshed recently is suspect, and controllers abort
/// actions based on stale inputs. Maximum Age staleness with aborts.
#[must_use]
pub fn plant_control(policy: Policy, seed: u64) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .seed(seed)
        // Refresh rates comfortably beat the 3 s maximum age (0.5/s per bulk
        // sensor, 1.5/s per critical sensor) so staleness is driven by the
        // scheduler, not by the feed.
        .lambda_u(300.0)
        .p_update_low(0.5)
        .mean_update_age(0.02)
        .n_low(300)
        .n_high(100)
        // Offered load well above capacity: the regime where schedulers differ.
        .lambda_t(14.0)
        .slack_min(0.2)
        .slack_max(2.0)
        .values(1.0, 0.2, 2.0, 0.4)
        .reads_mean(4.0)
        .reads_sd(2.0)
        .max_age(3.0)
        .compute_mean(0.1)
        .compute_sd(0.02)
        .abort_on_stale(true)
        .build()
        .expect("plant control preset is valid")
}

/// Telecommunications server (§2's UU example): call-state updates arrive
/// reliably and fast, so data is fresh unless an update is sitting
/// unapplied — Unapplied Update staleness, no periodic re-notification.
#[must_use]
pub fn telecom(policy: Policy, seed: u64) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .seed(seed)
        .staleness(StalenessSpec::UnappliedUpdate)
        .lambda_u(300.0)
        .p_update_low(0.5)
        .mean_update_age(0.005)
        .n_low(500)
        .n_high(500)
        .lambda_t(8.0)
        .slack_min(0.1)
        .slack_max(1.0)
        .reads_mean(2.0)
        .reads_sd(1.0)
        .compute_mean(0.1)
        .compute_sd(0.01)
        .queue_policy(QueuePolicy::Lifo)
        .build()
        .expect("telecom preset is valid")
}

/// Derived analytics (extension; STRIP's derived-view discussion, §6): the
/// program-trading feed augmented with a DAG of derived views — sector
/// indices over instruments, composites over indices. Base installs enqueue
/// typed deltas; transactions read derived nodes and, under OD, pay for a
/// recursive refresh of the stale ancestor cone at read time.
#[must_use]
pub fn derived_analytics(policy: Policy, seed: u64, spec: DagSpec) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .seed(seed)
        // A calmer feed than raw program trading: derived maintenance adds
        // background work, and the interesting regime is where delta
        // propagation competes with transactions, not where it drowns.
        .lambda_u(250.0)
        .p_update_low(0.6)
        .mean_update_age(0.05)
        .n_low(700)
        .n_high(300)
        .lambda_t(8.0)
        .p_txn_low(0.5)
        .slack_min(0.1)
        .slack_max(1.0)
        .values(1.0, 0.5, 3.0, 1.0)
        .reads_mean(2.0)
        .reads_sd(1.0)
        .max_age(5.0)
        .compute_mean(0.08)
        .compute_sd(0.01)
        .dag(Some(spec))
        .build()
        .expect("derived analytics preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for policy in Policy::PAPER_SET {
            assert!(program_trading(policy, 1).validate().is_ok());
            assert!(plant_control(policy, 1).validate().is_ok());
            assert!(telecom(policy, 1).validate().is_ok());
            assert!(derived_analytics(policy, 1, DagSpec::default())
                .validate()
                .is_ok());
        }
    }

    #[test]
    fn derived_preset_carries_the_dag_spec() {
        let spec = DagSpec {
            depth: 4,
            width: 8,
            ..DagSpec::default()
        };
        let cfg = derived_analytics(Policy::OnDemand, 7, spec);
        assert_eq!(cfg.dag, Some(spec));
    }

    #[test]
    fn presets_have_advertised_semantics() {
        let t = telecom(Policy::OnDemand, 1);
        assert_eq!(t.staleness, StalenessSpec::UnappliedUpdate);
        let p = plant_control(Policy::UpdatesFirst, 1);
        assert!(p.abort_on_stale);
        assert!(matches!(p.staleness, StalenessSpec::MaxAge { alpha } if alpha == 3.0));
        let g = program_trading(Policy::SplitUpdates, 1);
        assert!(!g.abort_on_stale);
        assert_eq!(g.lambda_u, 500.0);
    }
}
