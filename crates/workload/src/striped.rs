//! Striped simulation runner (scale-out extension).
//!
//! Models the sharded live runtime inside the simulator so the two stay
//! decision-parity: the object space is split across
//! [`SimConfig::stripes`] stripes by the *same*
//! [`strip_core::stripe`] hash the live connection readers use, the
//! seeded global workload is partitioned per stripe, and each stripe runs
//! a full independent sub-simulation (its own controller state, OS/update
//! queues, staleness tracker, and metrics — exactly what a live stripe
//! executor owns). The per-stripe reports are composed with
//! [`RunReport::merge_stripes`], the simulator twin of the live runtime's
//! cross-stripe collect-and-merge barrier.
//!
//! Modelling notes, mirroring the live design:
//! * **Updates** route to the stripe owning the object — bit-identical to
//!   the live fan-out (`stripe_of`), with the object id translated to the
//!   stripe-local index.
//! * **Transactions** route to the *home* stripe: the owner of their
//!   first read. Reads owned by other stripes are pinned onto home-stripe
//!   objects ([`StripeMap::pin_to`]) so the cost structure (read count,
//!   lookup time, deadline slack) is preserved exactly; the live runtime
//!   instead splits such read sets across owners and merges at a barrier.
//! * **Queue bounds** are per stripe (each stripe owns its queues), the
//!   same shape the live executors get.
//! * `stripes == 1` runs the ordinary single-store path via the scripted
//!   partition, which is bit-identical to [`run_paper_sim`] — pinned by
//!   `tests/policy_parity.rs`.
//!
//! [`SimConfig::stripes`]: strip_core::config::SimConfig::stripes
//! [`run_paper_sim`]: crate::run_paper_sim

use strip_core::config::{ConfigError, SimConfig};
use strip_core::controller::run_simulation_checked;
use strip_core::report::RunReport;
use strip_core::sources::{ScriptedTxns, UpdateSource, UpdateSpec};
use strip_core::stripe::{splitmix64, StripeMap};
use strip_core::txn::TxnSpec;

use crate::generators::{PoissonTxns, UpdateStream};
use crate::DisturbedUpdates;

/// A partitioned slice of the global update stream. Unlike
/// [`strip_core::sources::ScriptedUpdates`] this does not assert arrival
/// monotonicity: a disturbed global stream (reordering faults) stays
/// legal after partitioning, exactly as it would arriving at a live
/// stripe.
#[derive(Debug, Clone, Default)]
struct PartitionedUpdates {
    items: std::collections::VecDeque<UpdateSpec>,
}

impl UpdateSource for PartitionedUpdates {
    fn next_update(&mut self) -> Option<UpdateSpec> {
        self.items.pop_front()
    }
}

/// Materialises the global seeded update stream (with any configured
/// disturbance applied *before* partitioning, as faults hit the shared
/// network path) and routes each arrival to its owning stripe.
fn partition_updates(cfg: &SimConfig, map: &StripeMap) -> Vec<PartitionedUpdates> {
    let mut parts: Vec<PartitionedUpdates> = (0..map.stripes())
        .map(|_| PartitionedUpdates::default())
        .collect();
    let mut route = |spec: UpdateSpec| {
        let (s, local) = map.to_local(spec.object);
        parts[s as usize].items.push_back(UpdateSpec {
            object: local,
            ..spec
        });
    };
    let stream = UpdateStream::from_config(cfg);
    match cfg.disturbance {
        Some(spec) => {
            let mut disturbed = DisturbedUpdates::new(stream, spec, cfg.seed);
            while let Some(u) = disturbed.next_update() {
                route(u);
            }
        }
        None => {
            let mut stream = stream;
            while let Some(u) = stream.next_update() {
                route(u);
            }
        }
    }
    parts
}

/// Materialises the global transaction stream and routes each transaction
/// to its home stripe (owner of the first read), pinning foreign reads
/// onto home-stripe objects.
fn partition_txns(cfg: &SimConfig, map: &StripeMap) -> Vec<Vec<TxnSpec>> {
    let mut parts: Vec<Vec<TxnSpec>> = (0..map.stripes()).map(|_| Vec::new()).collect();
    let mut txns = PoissonTxns::from_config(cfg);
    use strip_core::sources::TxnSource;
    while let Some(spec) = txns.next_txn() {
        let home = match spec.reads.first() {
            Some(&id) => map.stripe_of(id),
            // A read-free transaction has no owner; spread by id hash.
            None => (splitmix64(spec.id) % u64::from(map.stripes())) as u32,
        };
        let reads = spec
            .reads
            .iter()
            .map(|&id| {
                let (s, local) = map.to_local(id);
                if s == home {
                    local
                } else {
                    map.pin_to(home, id)
                }
            })
            .collect();
        parts[home as usize].push(TxnSpec { reads, ..spec });
    }
    parts
}

/// Runs `cfg` under the striped model: one sub-simulation per stripe over
/// the partitioned seeded workload, merged at the cross-stripe barrier.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` fails validation.
pub fn run_paper_sim_striped(cfg: &SimConfig) -> Result<RunReport, ConfigError> {
    cfg.validate()?;
    let map = StripeMap::from_config(cfg);
    let updates = partition_updates(cfg, &map);
    let txns = partition_txns(cfg, &map);
    let mut parts = Vec::with_capacity(map.stripes() as usize);
    let mut shapes = Vec::with_capacity(map.stripes() as usize);
    for (s, (u, t)) in updates.into_iter().zip(txns).enumerate() {
        let (n_low, n_high) = map.shape(s as u32);
        shapes.push((n_low, n_high));
        if n_low + n_high == 0 {
            // The hash left this stripe empty (tiny object spaces only);
            // it owns nothing, receives nothing, and reports zeros.
            parts.push(RunReport::default());
            continue;
        }
        let mut sub = cfg.clone();
        sub.n_low = n_low;
        sub.n_high = n_high;
        // The sub-run itself is a single store; disturbance was already
        // applied to the global stream before partitioning.
        sub.stripes = 1;
        sub.disturbance = None;
        // Independent service-time draws per stripe; stripe 0 of a
        // single-stripe run keeps the base seed so the scripted path is
        // bit-identical to the unstriped simulator.
        if map.stripes() > 1 {
            sub.seed = cfg.seed ^ splitmix64(s as u64 + 1);
        }
        parts.push(run_simulation_checked(&sub, u, ScriptedTxns::new(t))?);
    }
    Ok(RunReport::merge_stripes(&parts, &shapes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strip_core::config::Policy;

    fn base(stripes: u32) -> SimConfig {
        SimConfig::builder()
            .policy(Policy::OnDemand)
            .duration(3.0)
            .seed(0x5712_1995)
            .stripes(stripes)
            .build()
            .unwrap()
    }

    #[test]
    fn striped_run_conserves_updates_per_stripe_and_in_aggregate() {
        let report = run_paper_sim_striped(&base(4)).unwrap();
        assert_eq!(report.stripes.len(), 4);
        let mut arrived = 0;
        for s in &report.stripes {
            assert_eq!(
                s.updates.terminal_total(),
                s.updates.arrived,
                "stripe {} leaks updates",
                s.stripe
            );
            arrived += s.updates.arrived;
        }
        assert_eq!(report.updates.arrived, arrived);
        assert_eq!(report.updates.terminal_total(), report.updates.arrived);
        assert!(report.txns.arrived > 0);
    }

    #[test]
    fn single_stripe_matches_unstriped_runner_bit_exactly() {
        let cfg = base(1);
        let striped = run_paper_sim_striped(&cfg).unwrap();
        let direct = crate::run_paper_sim_checked(&cfg).unwrap();
        // The scripted partition must be a faithful materialisation of
        // the lazy generator path.
        assert_eq!(striped.txns, direct.txns);
        assert_eq!(striped.updates, direct.updates);
        assert_eq!(striped.fold_low.to_bits(), direct.fold_low.to_bits());
        assert_eq!(striped.fold_high.to_bits(), direct.fold_high.to_bits());
    }
}
