//! Workload traces: capture a generated workload for exact replay.
//!
//! Useful for regression tests (replay the identical arrival sequence
//! against two configurations) and for serialising interesting workloads.

use serde::{Deserialize, Serialize};
use strip_core::sources::{ScriptedTxns, ScriptedUpdates, TxnSource, UpdateSource, UpdateSpec};
use strip_core::txn::TxnSpec;

/// A fully materialised workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Update arrivals in order.
    pub updates: Vec<SerializableUpdate>,
    /// Transaction arrivals in order.
    pub txns: Vec<TxnSpec>,
}

/// Serde-friendly mirror of [`UpdateSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerializableUpdate {
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Generation timestamp (seconds).
    pub generation_ts: f64,
    /// Target object.
    pub object: strip_db::object::ViewObjectId,
    /// New value.
    pub payload: f64,
    /// Attribute mask (`u64::MAX` = complete).
    pub attr_mask: u64,
}

impl From<UpdateSpec> for SerializableUpdate {
    fn from(u: UpdateSpec) -> Self {
        SerializableUpdate {
            arrival: u.arrival.as_secs(),
            generation_ts: u.generation_ts.as_secs(),
            object: u.object,
            payload: u.payload,
            attr_mask: u.attr_mask,
        }
    }
}

impl From<&SerializableUpdate> for UpdateSpec {
    fn from(u: &SerializableUpdate) -> Self {
        UpdateSpec {
            arrival: strip_sim::time::SimTime::from_secs(u.arrival),
            generation_ts: strip_sim::time::SimTime::from_secs(u.generation_ts),
            object: u.object,
            payload: u.payload,
            attr_mask: u.attr_mask,
        }
    }
}

impl Trace {
    /// Materialises a trace by exhausting the given sources.
    pub fn capture<U: UpdateSource, T: TxnSource>(mut updates: U, mut txns: T) -> Self {
        let mut trace = Trace::default();
        while let Some(u) = updates.next_update() {
            trace.updates.push(u.into());
        }
        while let Some(t) = txns.next_txn() {
            trace.txns.push(t);
        }
        trace
    }

    /// Builds replayable sources over this trace.
    #[must_use]
    pub fn replay(&self) -> (ScriptedUpdates, ScriptedTxns) {
        let updates = self.updates.iter().map(UpdateSpec::from).collect();
        (
            ScriptedUpdates::new(updates),
            ScriptedTxns::new(self.txns.clone()),
        )
    }

    /// Number of arrivals of each kind.
    #[must_use]
    pub fn len(&self) -> (usize, usize) {
        (self.updates.len(), self.txns.len())
    }

    /// True when the trace holds no arrivals at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty() && self.txns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{PoissonTxns, PoissonUpdates};
    use strip_core::config::SimConfig;

    #[test]
    fn capture_replay_round_trip() {
        let cfg = SimConfig::builder().duration(5.0).seed(3).build().unwrap();
        let trace = Trace::capture(
            PoissonUpdates::from_config(&cfg),
            PoissonTxns::from_config(&cfg),
        );
        assert!(!trace.is_empty());
        let (mut u, mut t) = trace.replay();
        let mut u_count = 0;
        while u.next_update().is_some() {
            u_count += 1;
        }
        let mut t_count = 0;
        while t.next_txn().is_some() {
            t_count += 1;
        }
        assert_eq!((u_count, t_count), trace.len());
    }

    #[test]
    fn replay_reproduces_simulation_results() {
        let cfg = SimConfig::builder().duration(5.0).seed(9).build().unwrap();
        let trace = Trace::capture(
            PoissonUpdates::from_config(&cfg),
            PoissonTxns::from_config(&cfg),
        );
        let (u1, t1) = trace.replay();
        let (u2, t2) = trace.replay();
        let r1 = strip_core::controller::run_simulation(&cfg, u1, t1);
        let r2 = strip_core::controller::run_simulation(&cfg, u2, t2);
        assert_eq!(r1, r2);
    }
}
