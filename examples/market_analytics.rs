//! Market analytics desk: the full STRIP service stack on one feed.
//!
//! Beyond the paper's baseline this exercises three extensions at once:
//!
//! * **historical views** — quants issue as-of price reads ("what was this
//!   instrument worth 10 seconds ago?");
//! * **update-triggered rules** — composite indices derived from baskets of
//!   instruments, recomputed when a constituent ticks;
//! * **the hash-indexed update queue** — keeping OD's on-demand refreshes
//!   cheap under a fast feed.
//!
//! ```text
//! cargo run --release --example market_analytics
//! ```

use strip::core::config::{HistoryAccess, Policy, SimConfig, TriggerConfig};
use strip::db::history::HistoryPolicy;
use strip::run_paper_sim;

fn desk_config(policy: Policy) -> SimConfig {
    let mut cfg = SimConfig::builder()
        .policy(policy)
        .lambda_u(450.0)
        .lambda_t(10.0)
        .n_low(600)
        .n_high(400)
        .values(1.0, 0.5, 2.5, 0.8)
        .duration(120.0)
        .seed(2026)
        .indexed_queue(true)
        .build()
        .expect("desk config");
    cfg.history = Some(HistoryAccess {
        policy: HistoryPolicy {
            retention_secs: 30.0,
            max_entries_per_object: 512,
        },
        p_historical_read: 0.25,
        lag_min: 1.0,
        lag_max: 20.0,
    });
    cfg.triggers = Some(TriggerConfig {
        n_rules: 300,        // composite indices
        sources_per_rule: 6, // constituents per index
        exec_instr: 20_000.0,
        max_pending: 2_000,
    });
    cfg
}

fn main() {
    println!("market analytics desk — feeds, as-of reads, composite indices\n");
    println!(
        "{:<6}{:>9}{:>9}{:>10}{:>10}{:>11}{:>10}{:>10}",
        "sched", "value/s", "psucc", "as-of", "miss %", "idx exec", "idx lag", "queue"
    );
    for policy in Policy::PAPER_SET {
        let r = run_paper_sim(&desk_config(policy));
        println!(
            "{:<6}{:>9.2}{:>9.3}{:>10}{:>10.1}{:>11}{:>10.2}{:>10}",
            r.policy,
            r.av(),
            r.txns.p_success(),
            r.history.historical_reads,
            100.0 * r.history.miss_fraction(),
            r.triggers.executed,
            r.triggers.lag_mean,
            r.updates.max_uq_len,
        );
    }
    println!(
        "\nreading the table: OD keeps the quants' live reads fresh (psucc) and the\n\
         as-of misses low, but only UF keeps composite indices (rules) ticking —\n\
         derived data needs update-side CPU that TF-family schedulers never grant\n\
         under load. The paper's §7 'triggers' future work starts exactly here."
    );
}
