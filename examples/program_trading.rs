//! Program trading (the paper's §1 motivating application).
//!
//! A market feed pushes hundreds of instrument updates per second while
//! arbitrage transactions race their deadlines — missing a deadline is a
//! missed trade, reading a stale price is a wrong trade. This example runs
//! the same feed under all four schedulers and prints the trade-desk view
//! of the trade-off.
//!
//! ```text
//! cargo run --release --example program_trading
//! ```

use strip::core::config::Policy;
use strip::run_paper_sim;
use strip::workload::scenarios::program_trading;

fn main() {
    const SECONDS: f64 = 120.0;
    println!("program trading desk — {SECONDS} simulated seconds per scheduler");
    println!("feed: 500 updates/s over 1000 instruments; 12 opportunities/s\n");
    println!(
        "{:<10}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "scheduler", "trades", "missed", "stale-data", "value/s", "fresh px %", "p_success"
    );
    let mut best: Option<(String, f64)> = None;
    for policy in Policy::PAPER_SET {
        let mut cfg = program_trading(policy, 7);
        cfg.duration = SECONDS;
        let r = run_paper_sim(&cfg);
        let fresh_px = 100.0 * (1.0 - (r.fold_low + r.fold_high) / 2.0);
        println!(
            "{:<10}{:>10}{:>12}{:>12}{:>12.2}{:>12.1}{:>12.3}",
            r.policy,
            r.txns.committed,
            r.txns.missed_deadline + r.txns.aborted_infeasible,
            r.txns.committed - r.txns.committed_fresh,
            r.av(),
            fresh_px,
            r.txns.p_success(),
        );
        let score = r.txns.p_success();
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((r.policy.clone(), score));
        }
    }
    let (name, score) = best.expect("at least one policy ran");
    println!(
        "\nbest trade-desk scheduler by p_success: {name} ({score:.3}) — \
         the paper's conclusion is On Demand (OD) wins overall"
    );
}
