//! Quickstart: run one simulation of the paper's baseline system and print
//! the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use strip::core::config::{Policy, SimConfig};
use strip::run_paper_sim;

fn main() {
    // The paper's baseline (Tables 1–3) with the On-Demand scheduler; 60
    // simulated seconds keep the example snappy.
    let cfg = SimConfig::builder()
        .policy(Policy::OnDemand)
        .duration(60.0)
        .seed(42)
        .build()
        .expect("valid configuration");

    let report = run_paper_sim(&cfg);

    println!("policy                     : {}", report.policy);
    println!("simulated seconds          : {}", report.duration);
    println!();
    println!("-- transactions --");
    println!("arrived                    : {}", report.txns.arrived);
    println!("committed on time          : {}", report.txns.committed);
    println!(
        "  ... with only fresh data : {}",
        report.txns.committed_fresh
    );
    println!(
        "missed deadline            : {}",
        report.txns.missed_deadline
    );
    println!(
        "aborted infeasible         : {}",
        report.txns.aborted_infeasible
    );
    println!(
        "mean response time         : {:.4} s",
        report.txns.response_mean
    );
    println!();
    println!("-- update stream --");
    println!("updates arrived            : {}", report.updates.arrived);
    println!(
        "installed (background)     : {}",
        report.updates.installed_background
    );
    println!(
        "installed (on demand)      : {}",
        report.updates.installed_on_demand
    );
    println!(
        "superseded skips           : {}",
        report.updates.superseded_skips
    );
    println!(
        "expired discards           : {}",
        report.updates.expired_dropped
    );
    println!("largest update queue       : {}", report.updates.max_uq_len);
    println!();
    println!("-- the paper's metrics (§3.5) --");
    println!("pMD   (missed fraction)    : {:.4}", report.txns.p_md());
    println!(
        "psuccess                   : {:.4}",
        report.txns.p_success()
    );
    println!(
        "psuc|nontardy              : {:.4}",
        report.txns.p_suc_nontardy()
    );
    println!("AV    (value / second)     : {:.4}", report.av());
    println!(
        "fold_l / fold_h            : {:.4} / {:.4}",
        report.fold_low, report.fold_high
    );
    println!(
        "rho_t / rho_u              : {:.4} / {:.4}",
        report.cpu.rho_t(),
        report.cpu.rho_u()
    );
}
