//! Plant control / sensor monitoring (the paper's §2 Maximum Age example).
//!
//! Sensors stream readings into the database; a control action computed
//! from a reading older than the maximum age is dangerous, so transactions
//! abort on stale input. This example contrasts the schedulers and shows
//! why Split Updates — keeping the *critical* sensors fresh while letting
//! bulk telemetry queue — is the paper's recommended compromise when OD is
//! not applicable.
//!
//! ```text
//! cargo run --release --example sensor_monitoring
//! ```

use strip::core::config::Policy;
use strip::run_paper_sim;
use strip::workload::scenarios::plant_control;

fn main() {
    const SECONDS: f64 = 120.0;
    println!("plant control — abort on stale sensor reads, alpha = 3 s");
    println!("{SECONDS} simulated seconds per scheduler\n");
    println!(
        "{:<10}{:>12}{:>14}{:>16}{:>16}{:>12}",
        "scheduler", "actions ok", "stale aborts", "bulk stale %", "critical stale %", "value/s"
    );
    for policy in Policy::PAPER_SET {
        let mut cfg = plant_control(policy, 11);
        cfg.duration = SECONDS;
        let r = run_paper_sim(&cfg);
        println!(
            "{:<10}{:>12}{:>14}{:>16.1}{:>16.1}{:>12.2}",
            r.policy,
            r.txns.committed,
            r.txns.aborted_stale,
            100.0 * r.fold_low,
            100.0 * r.fold_high,
            r.av(),
        );
    }
    println!(
        "\nSU matches UF's freshness on the critical (high-importance) sensors while\n\
         beating TF on aborts — the paper's §6.2 compromise. OD commits the most value\n\
         but only refreshes what is read, so unread sensors drift stale (its fold is\n\
         a display metric, not a safety problem, because every *read* is refreshed)."
    );
}
