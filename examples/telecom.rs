//! Telecommunications server (the paper's §2 Unapplied Update example).
//!
//! Call-state updates arrive quickly and reliably, so data is considered
//! fresh unless an update is sitting unapplied — the UU criterion. There is
//! no periodic re-notification ("if a call is on-going, we do not want to
//! be periodically notified that it is still going on"). This example runs
//! the UU scenario under all four schedulers and also demonstrates the
//! LIFO-vs-FIFO queue discipline and the hash-indexed queue extension.
//!
//! ```text
//! cargo run --release --example telecom
//! ```

use strip::core::config::{Policy, QueuePolicy};
use strip::run_paper_sim;
use strip::workload::scenarios::telecom;

fn main() {
    const SECONDS: f64 = 120.0;
    println!("telecom call server — Unapplied Update staleness");
    println!("{SECONDS} simulated seconds per run\n");
    println!(
        "{:<10}{:>12}{:>12}{:>14}{:>12}{:>12}",
        "scheduler", "committed", "stale reads", "p_success", "fold_l", "fold_h"
    );
    for policy in Policy::PAPER_SET {
        let mut cfg = telecom(policy, 23);
        cfg.duration = SECONDS;
        let r = run_paper_sim(&cfg);
        println!(
            "{:<10}{:>12}{:>12}{:>14.3}{:>12.4}{:>12.4}",
            r.policy,
            r.txns.committed,
            r.txns.stale_reads,
            r.txns.p_success(),
            r.fold_low,
            r.fold_high,
        );
    }

    // The UU queue grows without a maximum-age bound; the paper's proposed
    // fix is a hash table keeping only the newest update per object (§4.2).
    println!("\n-- TF under UU: plain queue vs hash-indexed queue extension --");
    for (label, indexed) in [("plain", false), ("indexed", true)] {
        let mut cfg = telecom(Policy::TransactionsFirst, 23);
        cfg.duration = SECONDS;
        cfg.indexed_queue = indexed;
        cfg.lambda_t = 12.0; // heavier load so the queue actually builds up
        let r = run_paper_sim(&cfg);
        println!(
            "{label:<10} max queue {:>6}  dedup-dropped {:>6}  p_success {:.3}",
            r.updates.max_uq_len,
            r.updates.dedup_dropped,
            r.txns.p_success(),
        );
    }

    println!("\n-- OD under UU: FIFO vs LIFO service --");
    for qp in [QueuePolicy::Fifo, QueuePolicy::Lifo] {
        let mut cfg = telecom(Policy::OnDemand, 23);
        cfg.duration = SECONDS;
        cfg.queue_policy = qp;
        let r = run_paper_sim(&cfg);
        println!(
            "{:?}: p_success {:.3}, superseded skips {}",
            qp,
            r.txns.p_success(),
            r.updates.superseded_skips
        );
    }
}
