//! `strip` — umbrella crate for the reproduction of
//! *Applying Update Streams in a Soft Real-Time Database System*
//! (Adelberg, Garcia-Molina, Kao — SIGMOD 1995).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`db`] — the soft real-time main-memory database substrate (object
//!   store, staleness tracking, OS/update queues, CPU cost model).
//! * [`core`] — the paper's contribution: the controller with the UF / TF /
//!   SU / OD update-scheduling policies and the extended metrics.
//! * [`obs`] — trace-level observability: ring-buffered typed trace
//!   records, periodic gauge sampling, Chrome-trace/CSV exporters.
//! * [`workload`] — Poisson update-stream and transaction generators plus
//!   scenario presets.
//! * [`experiments`] — the harness that regenerates every figure of the
//!   paper's evaluation.
//! * [`live`] — the wall-clock soft real-time runtime (`stripd` server and
//!   `strip-loadgen` client) running the same policies in real time.
//!
//! # Quickstart
//!
//! ```
//! use strip::core::config::{Policy, SimConfig};
//! use strip::run_paper_sim;
//!
//! let cfg = SimConfig::builder()
//!     .policy(Policy::OnDemand)
//!     .duration(5.0)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let report = run_paper_sim(&cfg);
//! assert!(report.txns.arrived > 0);
//! ```

pub use strip_core as core;
pub use strip_db as db;
pub use strip_experiments as experiments;
pub use strip_live as live;
pub use strip_obs as obs;
pub use strip_sim as sim;
pub use strip_workload as workload;

pub use strip_core::config::{Policy, QueuePolicy, SimConfig, StalenessDef};
pub use strip_core::report::RunReport;
pub use strip_workload::run_paper_sim;
