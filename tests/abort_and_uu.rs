//! Integration tests for the paper's §6.2 (MA with abort-on-stale) and
//! §6.3 (Unapplied Update) scenarios, plus the FIFO/LIFO study of §6.1.4.

use strip::core::config::{Policy, QueuePolicy, SimConfig, StalenessDef};
use strip::run_paper_sim;
use strip::RunReport;

const DURATION: f64 = 100.0;

fn run_cfg(policy: Policy, lambda_t: f64, mutate: impl FnOnce(&mut SimConfig)) -> RunReport {
    let mut cfg = SimConfig::builder()
        .policy(policy)
        .lambda_t(lambda_t)
        .duration(DURATION)
        .seed(0xABAD)
        .build()
        .unwrap();
    mutate(&mut cfg);
    run_paper_sim(&cfg)
}

#[test]
fn aborts_make_tf_data_dramatically_fresher() {
    // Fig 12: aborting stale readers frees CPU that TF then spends on
    // updates; fold_h collapses relative to the no-abort case.
    let no_abort = run_cfg(Policy::TransactionsFirst, 15.0, |_| {});
    let with_abort = run_cfg(Policy::TransactionsFirst, 15.0, |c| c.abort_on_stale = true);
    assert!(
        no_abort.fold_high > 0.8,
        "no-abort fold_h {}",
        no_abort.fold_high
    );
    assert!(
        with_abort.fold_high < 0.35,
        "abort fold_h {}",
        with_abort.fold_high
    );
    assert!(with_abort.fold_high < 0.5 * no_abort.fold_high);
}

#[test]
fn aborts_leave_uf_unchanged() {
    // Fig 12b: UF's data was already fresh; the ratio stays ≈ 1.
    let no_abort = run_cfg(Policy::UpdatesFirst, 15.0, |_| {});
    let with_abort = run_cfg(Policy::UpdatesFirst, 15.0, |c| c.abort_on_stale = true);
    let ratio = with_abort.fold_high / no_abort.fold_high.max(1e-9);
    assert!((ratio - 1.0).abs() < 0.25, "UF fold_h ratio {ratio}");
}

#[test]
fn od_wins_av_under_aborts_and_su_beats_tf_and_uf() {
    // Fig 13a: OD pulls ahead; SU (surprisingly) beats both its parents.
    let uf = run_cfg(Policy::UpdatesFirst, 15.0, |c| c.abort_on_stale = true);
    let tf = run_cfg(Policy::TransactionsFirst, 15.0, |c| c.abort_on_stale = true);
    let su = run_cfg(Policy::SplitUpdates, 15.0, |c| c.abort_on_stale = true);
    let od = run_cfg(Policy::OnDemand, 15.0, |c| c.abort_on_stale = true);
    assert!(
        od.av() > uf.av() && od.av() > tf.av() && od.av() > su.av(),
        "OD {} vs UF {} TF {} SU {}",
        od.av(),
        uf.av(),
        tf.av(),
        su.av()
    );
    assert!(su.av() > uf.av(), "SU {} > UF {}", su.av(), uf.av());
    assert!(su.av() > tf.av(), "SU {} > TF {}", su.av(), tf.av());
}

#[test]
fn od_leads_psuccess_under_aborts_and_tf_recovers() {
    // Fig 14: OD first by a clear margin over UF; TF — the big loser
    // without aborts — recovers to be competitive with SU/UF because its
    // data gets much fresher.
    let uf = run_cfg(Policy::UpdatesFirst, 15.0, |c| c.abort_on_stale = true);
    let tf = run_cfg(Policy::TransactionsFirst, 15.0, |c| c.abort_on_stale = true);
    let su = run_cfg(Policy::SplitUpdates, 15.0, |c| c.abort_on_stale = true);
    let od = run_cfg(Policy::OnDemand, 15.0, |c| c.abort_on_stale = true);
    let pod = od.txns.p_success();
    assert!(
        pod > uf.txns.p_success() + 0.05,
        "OD {pod} vs UF {}",
        uf.txns.p_success()
    );
    assert!(
        tf.txns.p_success() > su.txns.p_success() - 0.05,
        "TF {} comparable to SU {}",
        tf.txns.p_success(),
        su.txns.p_success()
    );
    let tf_no_abort = run_cfg(Policy::TransactionsFirst, 15.0, |_| {});
    assert!(
        tf.txns.p_success() > 3.0 * tf_no_abort.txns.p_success(),
        "aborts transform TF: {} vs {}",
        tf.txns.p_success(),
        tf_no_abort.txns.p_success()
    );
}

#[test]
fn later_view_reads_hurt_when_aborting() {
    // Fig 15: raising p_view wastes more work per stale abort; AV falls.
    for policy in [Policy::TransactionsFirst, Policy::SplitUpdates] {
        let early = run_cfg(policy, 10.0, |c| {
            c.abort_on_stale = true;
            c.p_view = 0.0;
        });
        let late = run_cfg(policy, 10.0, |c| {
            c.abort_on_stale = true;
            c.p_view = 1.0;
        });
        assert!(
            late.av() < early.av(),
            "{policy:?}: AV late {} < early {}",
            late.av(),
            early.av()
        );
    }
}

#[test]
fn uu_preserves_the_psuccess_ranking() {
    // Fig 16: OD, UF, SU, TF from best to worst under UU as well.
    let mk = |p| {
        run_cfg(p, 12.0, |c| {
            c.staleness = StalenessDef::UnappliedUpdate;
        })
    };
    let uf = mk(Policy::UpdatesFirst);
    let tf = mk(Policy::TransactionsFirst);
    let su = mk(Policy::SplitUpdates);
    let od = mk(Policy::OnDemand);
    assert!(
        od.txns.p_success() > uf.txns.p_success(),
        "OD {} > UF {}",
        od.txns.p_success(),
        uf.txns.p_success()
    );
    assert!(
        uf.txns.p_success() > su.txns.p_success(),
        "UF {} > SU {}",
        uf.txns.p_success(),
        su.txns.p_success()
    );
    assert!(
        su.txns.p_success() > tf.txns.p_success(),
        "SU {} > TF {}",
        su.txns.p_success(),
        tf.txns.p_success()
    );
}

#[test]
fn uu_uf_keeps_objects_fresh_almost_always() {
    // Under UU, UF applies each update as it arrives: staleness windows are
    // only the instants between receive and install.
    let r = run_cfg(Policy::UpdatesFirst, 10.0, |c| {
        c.staleness = StalenessDef::UnappliedUpdate;
    });
    assert!(r.fold_low < 0.01, "fold_low {}", r.fold_low);
    assert!(r.fold_high < 0.01, "fold_high {}", r.fold_high);
}

#[test]
fn lifo_keeps_data_fresher_than_fifo_for_tf() {
    // Fig 11: under load, FIFO installs nearly-expired updates first; LIFO
    // maximises the remaining lifetime of what it installs.
    let fifo = run_cfg(Policy::TransactionsFirst, 12.5, |_| {});
    let lifo = run_cfg(Policy::TransactionsFirst, 12.5, |c| {
        c.queue_policy = QueuePolicy::Lifo;
    });
    assert!(
        fifo.fold_low >= lifo.fold_low,
        "fold_l FIFO {} >= LIFO {}",
        fifo.fold_low,
        lifo.fold_low
    );
    assert!(
        fifo.txns.p_success() <= lifo.txns.p_success() + 0.02,
        "psuccess FIFO {} <= LIFO {}",
        fifo.txns.p_success(),
        lifo.txns.p_success()
    );
}

#[test]
fn heavier_installs_crush_uf_but_not_tf() {
    // Fig 7a: x_update at 50k instructions swamps UF (updates always run)
    // while TF sheds the work.
    let mk = |p: Policy, xu: f64| {
        run_cfg(p, 10.0, |c| {
            c.costs.x_update = xu;
        })
    };
    let uf_light = mk(Policy::UpdatesFirst, 20_000.0);
    let uf_heavy = mk(Policy::UpdatesFirst, 50_000.0);
    let tf_light = mk(Policy::TransactionsFirst, 20_000.0);
    let tf_heavy = mk(Policy::TransactionsFirst, 50_000.0);
    assert!(
        uf_heavy.av() < uf_light.av() - 1.0,
        "UF heavy {} light {}",
        uf_heavy.av(),
        uf_light.av()
    );
    assert!(
        (tf_heavy.av() - tf_light.av()).abs() < 1.0,
        "TF heavy {} light {}",
        tf_heavy.av(),
        tf_light.av()
    );
}

#[test]
fn scan_cost_hurts_od_and_the_indexed_queue_rescues_it() {
    // Fig 8 direction: OD pays x_scan · N_q per stale read, so heavy scan
    // constants cost it value while TF barely moves. In our model the
    // expiry-bounded queue holds ~α·λu entries, so the collapse is sharper
    // than the paper's (see EXPERIMENTS.md); the paper's own proposed fix —
    // the hash index over the queue (§4.4) — restores the lost value.
    let cheap = run_cfg(Policy::OnDemand, 10.0, |_| {});
    let costly = run_cfg(Policy::OnDemand, 10.0, |c| c.costs.x_scan = 10_000.0);
    assert!(
        costly.av() < cheap.av() - 1.0,
        "costly {} cheap {}",
        costly.av(),
        cheap.av()
    );
    let tf_cheap = run_cfg(Policy::TransactionsFirst, 10.0, |_| {});
    let tf_costly = run_cfg(Policy::TransactionsFirst, 10.0, |c| {
        c.costs.x_scan = 10_000.0
    });
    assert!(
        (tf_costly.av() - tf_cheap.av()).abs() < 1.0,
        "TF insensitive under MA: {} vs {}",
        tf_costly.av(),
        tf_cheap.av()
    );
    let rescued = run_cfg(Policy::OnDemand, 10.0, |c| {
        c.costs.x_scan = 10_000.0;
        c.indexed_queue = true;
    });
    assert!(
        rescued.av() > 0.8 * cheap.av(),
        "indexed queue rescues OD: {} vs {}",
        rescued.av(),
        cheap.av()
    );
}

#[test]
fn higher_update_rate_helps_od_freshness_at_constant_value() {
    // Fig 9: OD holds AV while psuccess improves as λu rises.
    let slow = run_cfg(Policy::OnDemand, 10.0, |c| c.lambda_u = 200.0);
    let fast = run_cfg(Policy::OnDemand, 10.0, |c| c.lambda_u = 550.0);
    assert!(
        (slow.av() - fast.av()).abs() < 1.0,
        "AV {} vs {}",
        slow.av(),
        fast.av()
    );
    assert!(
        fast.txns.p_success() > slow.txns.p_success(),
        "psuccess {} > {}",
        fast.txns.p_success(),
        slow.txns.p_success()
    );
    // ... while UF/SU lose value to the heavier stream (Fig 9b).
    let uf_slow = run_cfg(Policy::UpdatesFirst, 10.0, |c| c.lambda_u = 200.0);
    let uf_fast = run_cfg(Policy::UpdatesFirst, 10.0, |c| c.lambda_u = 550.0);
    assert!(
        uf_fast.av() < uf_slow.av(),
        "UF AV {} < {}",
        uf_fast.av(),
        uf_slow.av()
    );
}
