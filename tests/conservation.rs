//! Conservation and sanity invariants that must hold for EVERY
//! configuration: transactions and updates are neither lost nor double
//! counted, CPU time adds up, and all fractions stay in range.

use strip::core::config::{Policy, QueuePolicy, SimConfig, StalenessDef};
use strip::run_paper_sim;
use strip::RunReport;

fn check_invariants(r: &RunReport, label: &str) {
    // Transaction conservation.
    assert_eq!(
        r.txns.finished() + r.txns.in_flight_at_end,
        r.txns.arrived,
        "{label}: txn conservation {:?}",
        r.txns
    );
    assert!(r.txns.committed_fresh <= r.txns.committed, "{label}");
    assert!(r.txns.stale_reads <= r.txns.view_reads, "{label}");
    // Update conservation: every arrival ends in exactly one bucket.
    assert_eq!(
        r.updates.terminal_total(),
        r.updates.arrived,
        "{label}: update conservation {:?}",
        r.updates
    );
    // CPU time adds up.
    let util = r.cpu.utilization();
    assert!((0.0..=1.0 + 1e-9).contains(&util), "{label}: util {util}");
    assert!(r.cpu.busy_txn >= 0.0 && r.cpu.busy_update >= 0.0, "{label}");
    // Fractions in range.
    for (name, v) in [
        ("pMD", r.txns.p_md()),
        ("psuccess", r.txns.p_success()),
        ("psuc|nontardy", r.txns.p_suc_nontardy()),
        ("fold_low", r.fold_low),
        ("fold_high", r.fold_high),
    ] {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&v),
            "{label}: {name} out of range: {v}"
        );
    }
    // psuccess can never exceed the commit rate.
    assert!(r.txns.p_success() <= 1.0 - r.txns.p_md() + 1e-9, "{label}");
    assert!(r.av() >= 0.0, "{label}");
}

fn base(policy: Policy, seed: u64) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .duration(60.0)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn invariants_hold_across_policies_and_loads() {
    for policy in Policy::PAPER_SET {
        for lambda_t in [2.0, 10.0, 25.0] {
            let mut cfg = base(policy, 0xC0FFEE);
            cfg.lambda_t = lambda_t;
            let r = run_paper_sim(&cfg);
            check_invariants(&r, &format!("{policy:?}/lt={lambda_t}"));
        }
    }
}

#[test]
fn invariants_hold_with_aborts_and_uu() {
    for policy in Policy::PAPER_SET {
        let mut cfg = base(policy, 0xDADA);
        cfg.abort_on_stale = true;
        cfg.lambda_t = 15.0;
        check_invariants(&run_paper_sim(&cfg), &format!("{policy:?}/abort"));

        let mut cfg = base(policy, 0xDADA);
        cfg.staleness = StalenessDef::UnappliedUpdate;
        cfg.lambda_t = 12.0;
        check_invariants(&run_paper_sim(&cfg), &format!("{policy:?}/uu"));
    }
}

#[test]
fn invariants_hold_under_stress_knobs() {
    // Tiny queues, heavy costs, LIFO, indexed queue, preemption, fixed
    // fraction — the corners where accounting bugs hide.
    let mut cfg = base(Policy::TransactionsFirst, 1);
    cfg.uq_max = 8;
    cfg.os_max = 4;
    cfg.lambda_t = 20.0;
    check_invariants(&run_paper_sim(&cfg), "tiny-queues");

    let mut cfg = base(Policy::OnDemand, 2);
    cfg.costs.x_scan = 5_000.0;
    cfg.costs.x_queue = 2_000.0;
    cfg.costs.x_switch = 10_000.0;
    cfg.lambda_t = 15.0;
    check_invariants(&run_paper_sim(&cfg), "heavy-costs");

    let mut cfg = base(Policy::SplitUpdates, 3);
    cfg.queue_policy = QueuePolicy::Lifo;
    cfg.indexed_queue = true;
    cfg.lambda_t = 18.0;
    check_invariants(&run_paper_sim(&cfg), "lifo-indexed");

    let mut cfg = base(Policy::FixedFraction { fraction: 0.3 }, 4);
    cfg.lambda_t = 15.0;
    check_invariants(&run_paper_sim(&cfg), "fixed-fraction");

    let mut cfg = base(Policy::TransactionsFirst, 5);
    cfg.txn_preemption = true;
    cfg.lambda_t = 15.0;
    check_invariants(&run_paper_sim(&cfg), "txn-preemption");

    let mut cfg = base(Policy::UpdatesFirst, 6);
    cfg.costs.x_switch = 5_000.0;
    cfg.lambda_t = 10.0;
    check_invariants(&run_paper_sim(&cfg), "uf-switch-cost");

    let mut cfg = base(Policy::OnDemand, 7);
    cfg.warmup = 10.0;
    cfg.lambda_t = 10.0;
    let r = run_paper_sim(&cfg);
    // Warm-up breaks exact conservation (gated counters) but fractions and
    // CPU identities must still hold.
    assert!(r.cpu.measured_secs == 50.0);
    assert!(r.cpu.utilization() <= 1.0 + 1e-9);
    assert!((0.0..=1.0).contains(&r.fold_low));
}

#[test]
fn determinism_same_seed_same_report() {
    for policy in [Policy::OnDemand, Policy::SplitUpdates] {
        let cfg = base(policy, 99);
        let a = run_paper_sim(&cfg);
        let b = run_paper_sim(&cfg);
        assert_eq!(a, b, "{policy:?} not deterministic");
    }
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let mut avs = Vec::new();
    for seed in 0..4 {
        let mut cfg = base(Policy::OnDemand, seed);
        cfg.lambda_t = 10.0;
        let r = run_paper_sim(&cfg);
        avs.push(r.av());
    }
    // Seeds differ...
    assert!(avs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    // ...but estimate the same quantity.
    let mean: f64 = avs.iter().sum::<f64>() / avs.len() as f64;
    for av in &avs {
        assert!((av - mean).abs() / mean < 0.1, "AV {av} vs mean {mean}");
    }
}
