//! Cross-thread-count / cross-replica determinism harness.
//!
//! The static-analysis pass (`strip-lint`, rules D1–D3) guards the
//! *sources* of nondeterminism; this harness checks the *outcome*: the
//! same configuration must produce **byte-identical** serialized reports
//! regardless of how many worker threads execute the sweep, and replicated
//! sweeps must be byte-stable too — the thread count may only change
//! wall-clock time, never a single bit of output. Reports are compared in
//! the checkpoint text format (`serialize_report`), the exact
//! representation the resume path trusts.

use strip_core::config::{Policy, SimConfig};
use strip_experiments::runner::serialize_report;
use strip_experiments::sweep::{run_sweep_replicated, RunSettings};

/// A small but non-trivial sweep: every paper policy at two loads.
fn sweep_configs() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &policy in &Policy::PAPER_SET {
        for lambda_t in [6.0, 14.0] {
            configs.push(
                SimConfig::builder()
                    .policy(policy)
                    .lambda_t(lambda_t)
                    // Byte-identity does not need the paper's durations or
                    // full database; small runs keep the matrix fast under
                    // debug. (`run_sweep_replicated` takes duration/seed
                    // from the configs, not from `RunSettings`.)
                    .duration(2.0)
                    .seed(0x5712_1995)
                    .n_low(60)
                    .n_high(60)
                    .build()
                    .expect("valid sweep config"),
            );
        }
    }
    configs
}

/// Serializes a full replicated sweep result to one comparable byte blob.
fn sweep_bytes(threads: usize, replicas: usize) -> String {
    let settings = RunSettings {
        duration: 1.0,
        seed: 0x5712_1995,
        threads,
        replicas,
    };
    let sets = run_sweep_replicated(&settings, sweep_configs());
    let mut blob = String::new();
    for (c, set) in sets.iter().enumerate() {
        for (r, report) in set.iter().enumerate() {
            blob.push_str(&format!("== config {c} replica {r} ==\n"));
            blob.push_str(&serialize_report(report));
        }
    }
    blob
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    for replicas in [1usize, 4] {
        let single = sweep_bytes(1, replicas);
        for threads in [2usize, 4] {
            let multi = sweep_bytes(threads, replicas);
            assert_eq!(
                single, multi,
                "replicas={replicas}: {threads}-thread sweep diverged from single-threaded"
            );
        }
    }
}

#[test]
fn replica_zero_matches_the_unreplicated_run() {
    // Replica r runs with seed+r, so replica 0 of a replicated sweep must
    // be bit-identical to the corresponding unreplicated run.
    let settings1 = RunSettings {
        duration: 1.0,
        seed: 0x5712_1995,
        threads: 2,
        replicas: 1,
    };
    let settings4 = RunSettings {
        replicas: 4,
        ..settings1
    };
    let base = run_sweep_replicated(&settings1, sweep_configs());
    let replicated = run_sweep_replicated(&settings4, sweep_configs());
    assert_eq!(base.len(), replicated.len());
    for (set1, set4) in base.iter().zip(&replicated) {
        assert_eq!(set4.len(), 4);
        assert_eq!(
            serialize_report(&set1[0]),
            serialize_report(&set4[0]),
            "replica 0 must not feel the presence of replicas 1-3"
        );
    }
}
