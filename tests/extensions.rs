//! Integration tests for the implemented future-work extensions (paper §2
//! and §7): periodic updates, partial updates, combined staleness, split
//! update queue, historical views, triggered rules, and disk residency.

use strip::core::config::{HistoryAccess, IoModel, Policy, SimConfig, TriggerConfig, UpdateMode};
use strip::db::history::HistoryPolicy;
use strip::run_paper_sim;
use strip::RunReport;
use strip::StalenessDef;

fn base(policy: Policy, seed: u64) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .duration(80.0)
        .seed(seed)
        .build()
        .unwrap()
}

fn run(mutate: impl FnOnce(&mut SimConfig)) -> RunReport {
    let mut cfg = base(Policy::UpdatesFirst, 0xE87);
    mutate(&mut cfg);
    run_paper_sim(&cfg)
}

#[test]
fn periodic_refresh_eliminates_uf_staleness() {
    // Per-object period 2.5 s < α = 7 s: a kept-up database is never stale.
    let aperiodic = run(|c| c.policy = Policy::UpdatesFirst);
    let periodic = run(|c| {
        c.policy = Policy::UpdatesFirst;
        c.update_mode = UpdateMode::Periodic { jitter_frac: 0.0 };
    });
    assert!(
        aperiodic.fold_low > 0.04,
        "Poisson tail: {}",
        aperiodic.fold_low
    );
    assert!(periodic.fold_low < 0.005, "periodic: {}", periodic.fold_low);
    // Aggregate update load is the same either way.
    assert!((periodic.cpu.rho_u() - aperiodic.cpu.rho_u()).abs() < 0.01);
}

#[test]
fn periodic_jitter_keeps_rates_but_perturbs_phase() {
    let strict = run(|c| c.update_mode = UpdateMode::Periodic { jitter_frac: 0.0 });
    let jittered = run(|c| c.update_mode = UpdateMode::Periodic { jitter_frac: 0.5 });
    let ratio = jittered.updates.arrived as f64 / strict.updates.arrived as f64;
    assert!(
        (ratio - 1.0).abs() < 0.02,
        "arrival counts comparable: {ratio}"
    );
}

#[test]
fn partial_updates_raise_staleness_at_equal_arrival_rate() {
    let complete = run(|c| {
        c.attrs_per_object = 4;
        c.p_partial_update = 0.0;
    });
    let partial = run(|c| {
        c.attrs_per_object = 4;
        c.p_partial_update = 1.0;
    });
    // One attribute per update = a quarter of the information rate: the
    // oldest attribute governs MA staleness, so fold jumps.
    assert!(
        partial.fold_low > complete.fold_low + 0.3,
        "partial {} vs complete {}",
        partial.fold_low,
        complete.fold_low
    );
    // ... while the update CPU bill *drops* (quarter-size writes).
    assert!(partial.cpu.rho_u() < complete.cpu.rho_u());
}

#[test]
fn either_criterion_is_at_least_as_strict_as_both() {
    for policy in [
        Policy::UpdatesFirst,
        Policy::TransactionsFirst,
        Policy::OnDemand,
    ] {
        let ma = run(|c| c.policy = policy);
        let uu = run(|c| {
            c.policy = policy;
            c.staleness = StalenessDef::UnappliedUpdate;
        });
        let either = run(|c| {
            c.policy = policy;
            c.staleness = StalenessDef::Either { alpha: 7.0 };
        });
        let bound = ma.txns.p_success().min(uu.txns.p_success());
        assert!(
            either.txns.p_success() <= bound + 0.02,
            "{policy:?}: either {} > min(MA {}, UU {})",
            either.txns.p_success(),
            ma.txns.p_success(),
            uu.txns.p_success()
        );
    }
}

#[test]
fn split_queue_protects_high_partition_for_tf() {
    // The split queue matters when TF's residual install capacity can cover
    // the high-importance stream *if prioritised* but not both partitions:
    // 20% of 400/s = 80 high updates/s over 200 objects, against TF's
    // ~160 installs/s of residual capacity at λt = 10.
    let shape = |c: &mut SimConfig| {
        c.policy = Policy::TransactionsFirst;
        c.p_update_low = 0.8;
        c.n_high = 200;
    };
    let plain = run(shape);
    let split = run(|c| {
        shape(c);
        c.split_update_queue = true;
    });
    // With the split queue the scarce install slots go to high-importance
    // updates first: fold_h improves dramatically; fold_l pays for it.
    assert!(
        split.fold_high < 0.5 * plain.fold_high,
        "split fold_h {} vs plain {}",
        split.fold_high,
        plain.fold_high
    );
    assert!(split.fold_low >= plain.fold_low - 0.02);
}

#[test]
fn history_misses_shrink_with_retention() {
    let mk = |retention: f64| {
        run(|c| {
            c.policy = Policy::OnDemand;
            c.history = Some(HistoryAccess {
                policy: HistoryPolicy {
                    retention_secs: retention,
                    max_entries_per_object: 4096,
                },
                p_historical_read: 0.3,
                lag_min: 0.0,
                lag_max: 20.0,
            });
        })
    };
    let short = mk(2.0);
    let long = mk(40.0);
    assert!(short.history.historical_reads > 50);
    assert!(
        long.history.miss_fraction() < short.history.miss_fraction() - 0.1,
        "long {} vs short {}",
        long.history.miss_fraction(),
        short.history.miss_fraction()
    );
    assert!(long.history.entries_at_end > short.history.entries_at_end);
    // Chain length is bounded: appends = pruned + retained.
    assert_eq!(
        long.history.appends,
        long.history.pruned + long.history.entries_at_end
    );
}

#[test]
fn triggers_starve_under_tf_but_run_under_uf() {
    let mk = |policy| {
        run(|c| {
            c.policy = policy;
            c.lambda_t = 12.0;
            c.triggers = Some(TriggerConfig {
                n_rules: 500,
                sources_per_rule: 3,
                exec_instr: 10_000.0,
                max_pending: 5_000,
            });
        })
    };
    let tf = mk(Policy::TransactionsFirst);
    let uf = mk(Policy::UpdatesFirst);
    assert!(tf.triggers.fired > 0 && uf.triggers.fired > 0);
    let tf_rate = tf.triggers.executed as f64 / tf.triggers.fired as f64;
    let uf_rate = uf.triggers.executed as f64 / uf.triggers.fired as f64;
    assert!(
        uf_rate > 5.0 * tf_rate.max(1e-6),
        "UF executes rules ({uf_rate:.4}) far more than TF ({tf_rate:.4})"
    );
    // Conservation under both.
    for r in [&tf, &uf] {
        assert_eq!(
            r.triggers.fired,
            r.triggers.executed
                + r.triggers.coalesced
                + r.triggers.dropped
                + r.triggers.pending_at_end
        );
    }
}

#[test]
fn disk_residency_hurts_uf_more_than_od() {
    let mk = |policy, io: bool| {
        run(|c| {
            c.policy = policy;
            if io {
                c.io = Some(IoModel {
                    hit_ratio: 0.85,
                    x_io: 100_000.0,
                });
            }
        })
    };
    let uf_mem = mk(Policy::UpdatesFirst, false);
    let uf_disk = mk(Policy::UpdatesFirst, true);
    let od_mem = mk(Policy::OnDemand, false);
    let od_disk = mk(Policy::OnDemand, true);
    let uf_loss = uf_mem.av() - uf_disk.av();
    let od_loss = od_mem.av() - od_disk.av();
    // UF pays the install-side misses for all 400 updates/s; OD installs
    // (and therefore misses) far less under load.
    assert!(
        uf_loss > od_loss + 0.3,
        "UF loss {uf_loss:.2} vs OD loss {od_loss:.2}"
    );
    assert!(
        uf_disk.cpu.io_misses_installs > 2 * od_disk.cpu.io_misses_installs.max(1),
        "UF misses {} vs OD misses {}",
        uf_disk.cpu.io_misses_installs,
        od_disk.cpu.io_misses_installs
    );
}

#[test]
fn hot_first_beats_fifo_under_skewed_reads() {
    use strip::core::config::QueuePolicy;
    let mk = |qp: QueuePolicy| {
        run(|c| {
            c.policy = Policy::TransactionsFirst;
            c.read_skew = 1.0;
            c.queue_policy = qp;
        })
    };
    let fifo = mk(QueuePolicy::Fifo);
    let hot = mk(QueuePolicy::HotFirst);
    assert!(
        hot.txns.p_success() > 2.0 * fifo.txns.p_success(),
        "HotFirst {} vs FIFO {}",
        hot.txns.p_success(),
        fifo.txns.p_success()
    );
    // Deadline behaviour is untouched — only install order changes.
    assert!((hot.txns.p_md() - fifo.txns.p_md()).abs() < 0.03);
}

#[test]
fn hot_first_under_uniform_reads_reduces_to_a_lifo_like_discipline() {
    use strip::core::config::QueuePolicy;
    let mk = |qp: QueuePolicy| {
        run(|c| {
            c.policy = Policy::TransactionsFirst;
            c.queue_policy = qp;
        })
    };
    let fifo = mk(QueuePolicy::Fifo);
    let lifo = mk(QueuePolicy::Lifo);
    let hot = mk(QueuePolicy::HotFirst);
    // With uniform access there is no heat to exploit, but HotFirst still
    // installs each object's *newest* pending update, so it behaves like a
    // per-object LIFO: never worse than FIFO, at most LIFO-grade.
    assert!(hot.txns.p_success() >= fifo.txns.p_success() - 0.02);
    assert!(
        hot.txns.p_success() <= lifo.txns.p_success() + 0.08,
        "HotFirst {} vs LIFO {}",
        hot.txns.p_success(),
        lifo.txns.p_success()
    );
}

#[test]
fn burst_collapses_and_releases_psuccess() {
    use strip::core::config::BurstSpec;
    let r = run(|c| {
        c.policy = Policy::OnDemand;
        c.lambda_t = 6.0;
        c.duration = 240.0;
        c.lambda_t_burst = Some(BurstSpec {
            from: 80.0,
            until: 160.0,
            factor: 4.0,
        });
        c.timeline_window = Some(20.0);
    });
    assert_eq!(r.timeline.len(), 12, "12 windows of 20 s");
    let mean = |range: std::ops::Range<usize>| {
        let ws = &r.timeline[range];
        ws.iter()
            .map(strip::core::report::TimelineWindow::p_success)
            .sum::<f64>()
            / ws.len() as f64
    };
    let pre = mean(0..4);
    let during = mean(4..8);
    let post = mean(9..12); // skip the first recovery window
    assert!(pre > during + 0.2, "pre {pre} vs during {during}");
    assert!(post > during + 0.2, "post {post} vs during {during}");
    // Timeline totals reconcile with the aggregate counters.
    let finished: u64 = r.timeline.iter().map(|w| w.finished).sum();
    assert_eq!(finished, r.txns.finished());
    let committed: u64 = r.timeline.iter().map(|w| w.committed).sum();
    assert_eq!(committed, r.txns.committed);
}

#[test]
fn fixed_fraction_tracks_its_target_share() {
    // Offered txn load ≈ 0.6; update stream needs 0.19. With a 0.4 target,
    // the update side gets at least its natural demand and the achieved
    // update share must sit near max(demand, target-constrained) bounds.
    let cfg = SimConfig::builder()
        .policy(Policy::FixedFraction { fraction: 0.4 })
        .lambda_t(5.0)
        .duration(60.0)
        .seed(3)
        .build()
        .unwrap();
    let r = run_paper_sim(&cfg);
    let share = r.cpu.rho_u() / r.cpu.utilization();
    assert!(
        share > 0.19 && share < 0.45,
        "update share {share} (rho_u {}, util {})",
        r.cpu.rho_u(),
        r.cpu.utilization()
    );
    assert!(r.txns.p_md() < 0.2, "txns still mostly make it");
}

#[test]
fn extensions_compose_in_one_run() {
    // Everything on at once: a smoke test that the subsystems do not
    // interfere with each other's accounting.
    let r = run(|c| {
        c.policy = Policy::OnDemand;
        c.update_mode = UpdateMode::Periodic { jitter_frac: 0.2 };
        c.split_update_queue = true;
        c.indexed_queue = true;
        c.history = Some(HistoryAccess::default());
        c.triggers = Some(TriggerConfig::default());
        c.io = Some(IoModel::default());
    });
    assert!(r.txns.arrived > 0);
    assert_eq!(r.txns.finished() + r.txns.in_flight_at_end, r.txns.arrived);
    assert_eq!(r.updates.terminal_total(), r.updates.arrived);
    assert!(r.cpu.utilization() <= 1.0 + 1e-9);
    assert_eq!(
        r.triggers.fired,
        r.triggers.executed + r.triggers.coalesced + r.triggers.dropped + r.triggers.pending_at_end
    );
}
