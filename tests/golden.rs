//! Golden regression tests: the simulator is bit-for-bit deterministic, so
//! these pin exact outputs for one seed per policy. A failure here means a
//! behavioural change — if intentional, regenerate the constants (the test
//! comment shows how) and account for the change in EXPERIMENTS.md, since
//! every reproduced figure shifts with it.

use strip::core::config::{Policy, SimConfig};
use strip::run_paper_sim;

/// (policy, arrived, committed, committed_fresh, installed, updates_arrived,
/// value_committed, fold_low, fold_high) at λt = 12, 50 s, seed 0x601D.
type GoldenRow = (&'static str, u64, u64, u64, u64, u64, f64, f64, f64);

const GOLDEN: [GoldenRow; 4] = [
    (
        "UF", 582, 329, 278, 19516, 19944, 612.197719, 0.060291, 0.068052,
    ),
    (
        "TF", 582, 399, 84, 4793, 19944, 708.263994, 0.791600, 0.795844,
    ),
    (
        "SU", 582, 365, 223, 12807, 19944, 666.281404, 0.756990, 0.068051,
    ),
    (
        "OD", 582, 395, 335, 5473, 19944, 703.014093, 0.748107, 0.734594,
    ),
];

#[test]
fn golden_outputs_are_stable() {
    for (policy, golden) in Policy::PAPER_SET.iter().zip(GOLDEN) {
        let cfg = SimConfig::builder()
            .policy(*policy)
            .lambda_t(12.0)
            .duration(50.0)
            .seed(0x601D)
            .build()
            .unwrap();
        let r = run_paper_sim(&cfg);
        assert_eq!(r.policy, golden.0);
        assert_eq!(r.txns.arrived, golden.1, "{}: arrived", golden.0);
        assert_eq!(r.txns.committed, golden.2, "{}: committed", golden.0);
        assert_eq!(r.txns.committed_fresh, golden.3, "{}: fresh", golden.0);
        assert_eq!(
            r.updates.installed_total(),
            golden.4,
            "{}: installed",
            golden.0
        );
        assert_eq!(r.updates.arrived, golden.5, "{}: updates arrived", golden.0);
        assert!(
            (r.txns.value_committed - golden.6).abs() < 1e-6,
            "{}: value {} vs {}",
            golden.0,
            r.txns.value_committed,
            golden.6
        );
        assert!(
            (r.fold_low - golden.7).abs() < 1e-6,
            "{}: fold_low {} vs {}",
            golden.0,
            r.fold_low,
            golden.7
        );
        assert!(
            (r.fold_high - golden.8).abs() < 1e-6,
            "{}: fold_high {} vs {}",
            golden.0,
            r.fold_high,
            golden.8
        );
    }
}
// To regenerate after an intentional change:
//   run each policy at λt = 12, 50 s, seed 0x601D and print the nine fields
//   (see git history for the scratch generator), then update GOLDEN.
