//! Whole-system integration tests: short simulations must reproduce the
//! paper's qualitative findings (§6.1, MA staleness, no aborts).
//!
//! These use shorter runs than the benches (the paper uses 1000 s), so the
//! assertions test orderings and coarse magnitudes, not exact values.

use strip::core::config::{Policy, SimConfig};
use strip::run_paper_sim;
use strip::RunReport;

const DURATION: f64 = 100.0;

fn run_at(policy: Policy, lambda_t: f64) -> RunReport {
    let cfg = SimConfig::builder()
        .policy(policy)
        .lambda_t(lambda_t)
        .duration(DURATION)
        .seed(0xBEEF)
        .build()
        .unwrap();
    run_paper_sim(&cfg)
}

fn all_at(lambda_t: f64) -> [RunReport; 4] {
    [
        run_at(Policy::UpdatesFirst, lambda_t),
        run_at(Policy::TransactionsFirst, lambda_t),
        run_at(Policy::SplitUpdates, lambda_t),
        run_at(Policy::OnDemand, lambda_t),
    ]
}

#[test]
fn uf_update_utilisation_is_flat_at_one_fifth() {
    // Fig 3b: UF's ρu ≈ λu(x_lookup + x_update)/ips = 0.192 regardless of
    // transaction load.
    for lt in [2.0, 10.0, 20.0] {
        let r = run_at(Policy::UpdatesFirst, lt);
        assert!(
            (r.cpu.rho_u() - 0.192).abs() < 0.01,
            "UF rho_u at lt={lt}: {}",
            r.cpu.rho_u()
        );
    }
}

#[test]
fn tf_sheds_update_work_as_load_rises() {
    // Fig 3b: TF's ρu falls toward 0 as λt grows.
    let low = run_at(Policy::TransactionsFirst, 2.0);
    let high = run_at(Policy::TransactionsFirst, 20.0);
    assert!(low.cpu.rho_u() > 0.15, "low-load rho_u {}", low.cpu.rho_u());
    assert!(
        high.cpu.rho_u() < 0.02,
        "high-load rho_u {}",
        high.cpu.rho_u()
    );
}

#[test]
fn total_utilisation_saturates_identically() {
    // §6.1: total utilisation reaches 1 under overload for every algorithm.
    for r in all_at(20.0) {
        let util = r.cpu.utilization();
        assert!(
            util > 0.98 && util <= 1.0 + 1e-9,
            "{}: util {util}",
            r.policy
        );
    }
    // And is far below 1 at light load.
    for r in all_at(2.0) {
        assert!(r.cpu.utilization() < 0.6, "{}: util too high", r.policy);
    }
}

#[test]
fn missed_deadline_ranking_matches_fig4a() {
    // Fig 4a at high load: TF and OD miss least; UF misses most.
    let [uf, tf, su, od] = all_at(15.0);
    assert!(
        tf.txns.p_md() < su.txns.p_md(),
        "TF {} < SU {}",
        tf.txns.p_md(),
        su.txns.p_md()
    );
    assert!(od.txns.p_md() < su.txns.p_md());
    assert!(
        su.txns.p_md() < uf.txns.p_md(),
        "SU {} < UF {}",
        su.txns.p_md(),
        uf.txns.p_md()
    );
}

#[test]
fn av_increases_with_load_despite_missing_more() {
    // Fig 4b: more offered load → more value, because the scheduler picks
    // the highest value-density work.
    for policy in Policy::PAPER_SET {
        let low = run_at(policy, 5.0);
        let high = run_at(policy, 20.0);
        assert!(high.txns.p_md() > low.txns.p_md(), "{policy:?} misses more");
        assert!(
            high.av() > low.av(),
            "{policy:?} earns more: {} vs {}",
            high.av(),
            low.av()
        );
    }
}

#[test]
fn av_ranking_matches_fig4b() {
    // Fig 4b at high load: TF/OD above SU above UF.
    let [uf, tf, su, od] = all_at(20.0);
    assert!(tf.av() > su.av() && od.av() > su.av());
    assert!(su.av() > uf.av());
}

#[test]
fn staleness_matches_fig5() {
    let [uf, tf, su, od] = all_at(20.0);
    // UF keeps everything fresh (< 10%).
    assert!(
        uf.fold_low < 0.10 && uf.fold_high < 0.10,
        "UF fold {} {}",
        uf.fold_low,
        uf.fold_high
    );
    // TF lets almost everything go stale under load.
    assert!(
        tf.fold_low > 0.85 && tf.fold_high > 0.85,
        "TF fold {} {}",
        tf.fold_low,
        tf.fold_high
    );
    // SU protects the high-importance partition only.
    assert!(su.fold_high < 0.10, "SU fold_h {}", su.fold_high);
    assert!(su.fold_low > 0.5, "SU fold_l {}", su.fold_low);
    // OD is no worse than TF (it refreshes what transactions read).
    assert!(od.fold_high <= tf.fold_high + 0.02);
}

#[test]
fn psuccess_ranking_matches_fig6a() {
    // Fig 6a: OD > UF > SU > TF across the load range.
    for lt in [10.0, 15.0, 20.0] {
        let [uf, tf, su, od] = all_at(lt);
        let (puf, ptf, psu, pod) = (
            uf.txns.p_success(),
            tf.txns.p_success(),
            su.txns.p_success(),
            od.txns.p_success(),
        );
        assert!(pod > puf, "lt={lt}: OD {pod} > UF {puf}");
        assert!(puf > psu, "lt={lt}: UF {puf} > SU {psu}");
        assert!(psu > ptf, "lt={lt}: SU {psu} > TF {ptf}");
    }
}

#[test]
fn psuc_nontardy_matches_fig6b() {
    // Fig 6b: for OD and UF, meeting the deadline almost implies fresh
    // data; for TF staleness dominates.
    let [uf, tf, _su, od] = all_at(15.0);
    assert!(
        od.txns.p_suc_nontardy() > 0.8,
        "OD {}",
        od.txns.p_suc_nontardy()
    );
    assert!(
        uf.txns.p_suc_nontardy() > 0.8,
        "UF {}",
        uf.txns.p_suc_nontardy()
    );
    assert!(
        tf.txns.p_suc_nontardy() < 0.35,
        "TF {}",
        tf.txns.p_suc_nontardy()
    );
}

#[test]
fn low_load_analytic_cross_checks() {
    // At λt = 2 virtually everything commits; AV ≈ λt · E[value] = 2 · 1.5.
    for r in all_at(2.0) {
        assert!(r.txns.p_md() < 0.05, "{}: pMD {}", r.policy, r.txns.p_md());
        assert!((r.av() - 3.0).abs() < 0.3, "{}: AV {}", r.policy, r.av());
        // ρt ≈ λt · (compute + 2 lookups) ≈ 0.24.
        assert!(
            (r.cpu.rho_t() - 0.24).abs() < 0.03,
            "{}: rho_t {}",
            r.policy,
            r.cpu.rho_t()
        );
    }
}

#[test]
fn su_dip_mechanism_high_value_txns_dominate_under_load() {
    // §6.1's explanation of SU's psuc|nontardy dip-and-recover: "under high
    // λt, only high importance transactions can finish and SU behaves more
    // like UF for high importance data". Verify the mechanism directly with
    // the per-class breakdown.
    let low_load = run_at(Policy::SplitUpdates, 5.0);
    let high_load = run_at(Policy::SplitUpdates, 25.0);
    let share = |r: &RunReport| {
        let by = &r.txns.by_class;
        by[1].committed as f64 / (by[0].committed + by[1].committed).max(1) as f64
    };
    assert!(
        share(&high_load) > share(&low_load) + 0.15,
        "high-value share grows with load: {} -> {}",
        share(&low_load),
        share(&high_load)
    );
    // And those surviving high-value commits read fresh data (SU keeps the
    // high partition fresh), which is what drags psuc|nontardy back up.
    let by = &high_load.txns.by_class;
    let high_fresh = by[1].committed_fresh as f64 / by[1].committed.max(1) as f64;
    let low_fresh = by[0].committed_fresh as f64 / by[0].committed.max(1) as f64;
    assert!(
        high_fresh > low_fresh + 0.3,
        "high class fresh {high_fresh} vs low {low_fresh}"
    );
    // Class accounting reconciles with the totals.
    assert_eq!(by[0].arrived + by[1].arrived, high_load.txns.arrived);
    assert_eq!(by[0].committed + by[1].committed, high_load.txns.committed);
    assert_eq!(
        by[0].committed_fresh + by[1].committed_fresh,
        high_load.txns.committed_fresh
    );
}

#[test]
fn uf_steady_state_staleness_matches_poisson_tail() {
    // Under UF every update installs promptly, so an object is stale iff
    // its Poisson refresh gap exceeds α: P = exp(-α·rate) = exp(-2.8).
    let r = run_at(Policy::UpdatesFirst, 5.0);
    let expect = (-2.8f64).exp();
    assert!(
        (r.fold_low - expect).abs() < 0.02,
        "fold_low {} vs {expect}",
        r.fold_low
    );
    assert!(
        (r.fold_high - expect).abs() < 0.02,
        "fold_high {}",
        r.fold_high
    );
}
