//! Integration tests for the robustness layer: disturbed update streams,
//! bounded-queue shedding, and the crash-isolated, checkpointing sweep
//! runner (figR1's machinery, end to end).

use std::sync::Arc;

use strip_core::config::{DisturbanceSpec, Policy, ShedPolicy, SimConfig};
use strip_experiments::figures::OUTAGE_GRID;
use strip_experiments::runner::RunFn;
use strip_experiments::{Campaign, FigureId, RunSettings, SweepRunner};
use strip_workload::run_paper_sim;

fn outage_cfg(policy: Policy, outage_secs: f64) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .duration(60.0)
        .seed(0xFEED)
        .disturbance(Some(DisturbanceSpec {
            outage_from: 20.0,
            outage_secs,
            ..DisturbanceSpec::default()
        }))
        .build()
        .unwrap()
}

#[test]
fn outage_spikes_staleness_and_recovery_is_measured() {
    let calm = run_paper_sim(&outage_cfg(Policy::UpdatesFirst, 0.0));
    let hit = run_paper_sim(&outage_cfg(Policy::UpdatesFirst, 15.0));
    // A zero-length outage is the undisturbed stream.
    assert_eq!(calm.resilience.outage_held, 0);
    assert_eq!(calm.resilience.recovery_secs, None);
    // The outage held a flood of arrivals (λu = 400/s for 15 s) ...
    assert!(
        hit.resilience.outage_held > 4_000,
        "expected a catch-up flood, held only {}",
        hit.resilience.outage_held
    );
    // ... the silence left the view visibly staler ...
    assert!(
        hit.fold_high > calm.fold_high + 0.05,
        "no staleness spike: disturbed fold_h {} vs calm {}",
        hit.fold_high,
        calm.fold_high
    );
    // ... and the time back to the pre-outage staleness level was measured.
    let rec = hit
        .resilience
        .recovery_secs
        .expect("UF must recover before the horizon");
    assert!(
        (0.0..=25.0).contains(&rec),
        "recovery outside the post-outage window: {rec}"
    );
}

fn shed_cfg(shed: ShedPolicy) -> SimConfig {
    SimConfig::builder()
        .policy(Policy::TransactionsFirst)
        .duration(60.0)
        .seed(0xFEED)
        // Roomy OS queue so the flood reaches the update queue; tight UQ_max
        // so the shedding policy decides what survives.
        .os_max(20_000)
        .uq_max(250)
        .uq_shed(shed)
        .disturbance(Some(DisturbanceSpec {
            outage_from: 20.0,
            outage_secs: 15.0,
            ..DisturbanceSpec::default()
        }))
        .build()
        .unwrap()
}

#[test]
fn drop_lowest_importance_keeps_high_partition_fresher() {
    let newest = run_paper_sim(&shed_cfg(ShedPolicy::DropNewest));
    let lowimp = run_paper_sim(&shed_cfg(ShedPolicy::DropLowestImportance));
    // The catch-up flood must actually overflow the bounded queue.
    assert!(
        newest.updates.overflow_dropped > 100,
        "flood did not overflow UQ_max: {} drops",
        newest.updates.overflow_dropped
    );
    assert!(lowimp.updates.overflow_dropped > 100);
    // Shedding low-importance updates preserves the high partition.
    assert!(
        lowimp.fold_high < newest.fold_high,
        "drop-low-imp should beat drop-newest on fold_h: {} vs {}",
        lowimp.fold_high,
        newest.fold_high
    );
}

#[test]
fn panicking_point_is_retried_recorded_and_not_fatal() {
    let bomb: RunFn = Arc::new(|cfg: &SimConfig| {
        assert!(
            cfg.policy != Policy::SplitUpdates,
            "injected SU crash (test hook)"
        );
        run_paper_sim(cfg)
    });
    let runner = SweepRunner::new().with_run_fn(bomb);
    let mut campaign = Campaign::with_runner(RunSettings::quick(2.0), runner);
    let figs = campaign.figure(FigureId::FigR1);
    // The campaign completed every panel despite one algorithm crashing on
    // every point of the outage sweep.
    assert_eq!(figs.len(), 4);
    let failures = campaign.failures();
    assert_eq!(
        failures.len(),
        OUTAGE_GRID.len(),
        "one recorded failure per SU outage point"
    );
    for f in failures {
        assert_eq!(f.attempts, 2, "each crash is retried once");
        assert!(f.label.starts_with("SU"), "unexpected label {}", f.label);
        assert!(f.message.contains("injected SU crash"));
    }
    // Surviving series still carry data: UF's fold_h panel has real points.
    let uf = &figs[0].series[0];
    assert_eq!(uf.label, "UF");
    assert_eq!(uf.points.len(), OUTAGE_GRID.len());
}

#[test]
fn checkpointed_campaign_resumes_after_a_kill() {
    let dir = std::env::temp_dir().join(format!("strip-resilience-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let settings = RunSettings::quick(5.0);

    // First campaign: completes figR1 and checkpoints every point.
    let mut first = Campaign::with_runner(
        settings.clone(),
        SweepRunner::new().with_checkpoint_dir(&dir),
    );
    let reference = first.figure(FigureId::FigR1);
    assert!(first.failures().is_empty());
    assert_eq!(first.resumed(), 0);
    let total_points = 2 * 4 * OUTAGE_GRID.len(); // two sweeps x 4 series

    // Simulate a kill partway through: delete a few completed points, as if
    // the process died before reaching them.
    let mut ckpts: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(ckpts.len(), total_points);
    ckpts.sort();
    for lost in &ckpts[..3] {
        std::fs::remove_file(lost).unwrap();
    }

    // Rerun with the same parameters: only the lost points re-simulate, and
    // the figures come out identical.
    let mut second = Campaign::with_runner(settings, SweepRunner::new().with_checkpoint_dir(&dir));
    let resumed = second.figure(FigureId::FigR1);
    assert_eq!(second.resumed(), total_points - 3);
    assert!(second.failures().is_empty());
    assert_eq!(resumed, reference);
    let _ = std::fs::remove_dir_all(&dir);
}
