//! Golden equivalence: the strip-obs flight recorder is observation-only.
//!
//! For every scheduling policy, a run with the recorder attached — at the
//! default gauge cadence, at a 4× denser cadence, and with gauge sampling
//! off entirely — must produce a `RunReport` **bit-identical** to the
//! untraced run of the same configuration. Any divergence means an
//! observer perturbed the simulation (scheduled an event, consumed RNG,
//! or reordered work), which is the one thing the tracing layer is never
//! allowed to do.

use strip::core::config::{Policy, SimConfig};
use strip::obs::{TraceConfig, TraceKind};
use strip::workload::{run_paper_sim_checked, run_paper_sim_traced};

/// The golden configuration: saturated enough that every record kind
/// (slices, preemptions, installs, aborts, commits) actually fires.
fn golden_cfg(policy: Policy) -> SimConfig {
    SimConfig::builder()
        .policy(policy)
        .lambda_t(12.0)
        .duration(50.0)
        .seed(0x601D)
        .build()
        .expect("golden config is valid")
}

#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    for policy in Policy::PAPER_SET {
        let cfg = golden_cfg(policy);
        let untraced = run_paper_sim_checked(&cfg).expect("untraced run");
        for trace in [
            TraceConfig::default(),
            TraceConfig {
                gauge_every: Some(0.25),
                ..TraceConfig::default()
            },
            TraceConfig {
                gauge_every: None,
                ..TraceConfig::default()
            },
        ] {
            let (traced, data) = run_paper_sim_traced(&cfg, trace).expect("traced run");
            assert_eq!(
                untraced,
                traced,
                "{}: traced report diverged (gauge_every {:?})",
                policy.label(),
                trace.gauge_every
            );
            assert_eq!(data.policy, policy.label());
            match trace.gauge_every {
                Some(_) => assert!(!data.gauges.is_empty(), "cadence set but no gauges"),
                None => assert!(data.gauges.is_empty(), "gauges sampled with cadence off"),
            }
        }
    }
}

#[test]
fn golden_trace_captures_every_record_kind() {
    let cfg = golden_cfg(Policy::UpdatesFirst);
    let (report, data) = run_paper_sim_traced(&cfg, TraceConfig::default()).expect("traced run");

    let mut starts = 0u64;
    let mut ends = 0u64;
    let mut commits = 0u64;
    let mut installs = 0u64;
    let mut preempts = 0u64;
    for r in &data.records {
        match r.kind {
            TraceKind::SliceStart { .. } => starts += 1,
            TraceKind::SliceEnd { .. } => ends += 1,
            TraceKind::Commit { .. } => commits += 1,
            TraceKind::Install { .. } => installs += 1,
            TraceKind::Preempt { .. } => preempts += 1,
            _ => {}
        }
    }
    assert!(starts > 0 && ends > 0, "no CPU slices recorded");
    assert!(preempts > 0, "UF under load must preempt");
    // The ring buffer may have evicted the run's earliest records, so the
    // retained counts are lower bounds only when eviction happened.
    if data.overwritten == 0 {
        assert_eq!(
            commits, report.txns.committed,
            "one Commit record per committed transaction"
        );
        assert_eq!(
            installs,
            report.updates.installed_background
                + report.updates.installed_immediate
                + report.updates.installed_on_demand
                + report.updates.superseded_skips,
            "one Install record per terminal apply decision"
        );
        assert_eq!(starts, ends, "every slice start has a matching end");
    }
}

#[test]
fn gauge_cadence_only_changes_gauges() {
    let cfg = golden_cfg(Policy::OnDemand);
    let (_, sparse) = run_paper_sim_traced(&cfg, TraceConfig::default()).expect("sparse");
    let (_, dense) = run_paper_sim_traced(
        &cfg,
        TraceConfig {
            gauge_every: Some(0.25),
            ..TraceConfig::default()
        },
    )
    .expect("dense");
    assert_eq!(
        sparse.records, dense.records,
        "gauge cadence must not change the record stream"
    );
    assert!(
        dense.gauges.len() > sparse.gauges.len(),
        "4x cadence should sample more gauges ({} vs {})",
        dense.gauges.len(),
        sparse.gauges.len()
    );
}
